"""Failure-injection tests: container crashes and system recovery."""

import numpy as np
import pytest

from repro.telemetry import TelemetrySink

from repro.core import ErmsScaler, ServiceSpec
from repro.graphs import DependencyGraph, call
from repro.simulator import (
    AutoscaleConfig,
    AutoscaledSimulation,
    ClusterSimulator,
    SimulatedMicroservice,
    SimulationConfig,
)
from repro.workloads import StaticRate, analytic_profile


def make_simulator(containers=3, rate=10_000.0, duration=1.0, seed=1):
    spec = ServiceSpec("svc", DependencyGraph("svc", call("B")), 0.0, 1e9)
    return ClusterSimulator(
        [spec],
        {"B": SimulatedMicroservice("B", base_service_ms=5.0, threads=2)},
        containers={"B": containers},
        rates={"svc": rate},
        config=SimulationConfig(
            duration_min=duration, warmup_min=0.0, seed=seed
        ),
    )


class TestContainerFailure:
    def test_failure_reduces_rotation(self):
        sim = make_simulator(containers=3)
        assert sim.inject_container_failure("B") >= 0
        assert sim.container_count("B") == 2

    def test_last_container_protected(self):
        sim = make_simulator(containers=1)
        with pytest.raises(ValueError, match="last container"):
            sim.inject_container_failure("B")

    def test_retried_jobs_all_complete(self):
        sim = make_simulator(containers=3, rate=20_000.0)
        sim.events.schedule(20_000.0, lambda t: sim.inject_container_failure("B"))
        sim.events.schedule(40_000.0, lambda t: sim.inject_container_failure("B"))
        result = sim.run()
        assert result.completed["svc"] == result.generated["svc"]

    def test_dropped_jobs_never_complete(self):
        # Overload the containers (capacity 48k req/min) so queues grow
        # without bound and are non-empty when one dies, independent of
        # the engine's RNG draw order.
        sim = make_simulator(containers=2, rate=50_000.0)
        dropped = []
        sim.events.schedule(
            30_000.0,
            lambda t: dropped.append(
                sim.inject_container_failure("B", retry=False)
            ),
        )
        result = sim.run()
        assert dropped[0] > 0
        assert (
            result.generated["svc"] - result.completed["svc"] == dropped[0]
        )

    def test_dropped_requests_counter(self):
        sim = make_simulator(containers=2, rate=50_000.0)
        dropped = []
        sim.events.schedule(
            30_000.0,
            lambda t: dropped.append(
                sim.inject_container_failure("B", retry=False)
            ),
        )
        result = sim.run()
        assert result.dropped_requests["svc"] == dropped[0] > 0

    def test_failure_raises_latency(self):
        calm = make_simulator(containers=3, rate=25_000.0, duration=2.0).run()
        degraded_sim = make_simulator(containers=3, rate=25_000.0, duration=2.0)
        degraded_sim.events.schedule(
            30_000.0, lambda t: degraded_sim.inject_container_failure("B")
        )
        degraded = degraded_sim.run()
        assert degraded.tail_latency("svc") > calm.tail_latency("svc")


class TestRestartRecovery:
    def test_restart_restores_capacity(self):
        """A crash with ``restart_after_ms`` heals without the autoscaler."""
        sim = make_simulator(containers=3, rate=20_000.0)
        sim.events.schedule(
            20_000.0,
            lambda t: sim.inject_container_failure(
                "B", restart_after_ms=5_000.0
            ),
        )
        counts = []
        sim.events.schedule(21_000.0, lambda t: counts.append(sim.container_count("B")))
        sim.events.schedule(30_000.0, lambda t: counts.append(sim.container_count("B")))
        result = sim.run()
        assert counts == [2, 3]  # down after the crash, back after 5 s
        assert result.completed["svc"] == result.generated["svc"]

    def test_restart_records_decision(self):
        sink = TelemetrySink()
        spec = ServiceSpec("svc", DependencyGraph("svc", call("B")), 0.0, 1e9)
        sim = ClusterSimulator(
            [spec],
            {"B": SimulatedMicroservice("B", base_service_ms=5.0, threads=2)},
            containers={"B": 3},
            rates={"svc": 10_000.0},
            config=SimulationConfig(duration_min=1.0, warmup_min=0.0, seed=1),
            telemetry=sink,
        )
        sim.events.schedule(
            20_000.0,
            lambda t: sim.inject_container_failure(
                "B", restart_after_ms=4_000.0
            ),
        )
        sim.run()
        records = sink.decisions.records
        crashes = [r for r in records if r.delta < 0]
        restarts = [r for r in records if "container restart" in r.reason]
        assert len(crashes) == 1 and len(restarts) == 1
        assert restarts[0].delta == 1
        assert restarts[0].minute >= crashes[0].minute


class TestAutoscalerRecovery:
    def test_control_loop_replaces_failed_containers(self):
        """The autoscaler restores capacity after a crash."""
        spec = ServiceSpec(
            "svc", DependencyGraph("svc", call("B")), workload=0.0, sla=200.0
        )
        simulated = {"B": SimulatedMicroservice("B", base_service_ms=5.0, threads=2)}
        profiles = {"B": analytic_profile("B", 5.0, 2)}
        sim = AutoscaledSimulation(
            [spec],
            simulated,
            ErmsScaler(),
            profiles,
            rates={"svc": StaticRate(30_000.0)},
            config=SimulationConfig(duration_min=4.0, warmup_min=0.0, seed=3),
            autoscale=AutoscaleConfig(interval_min=1.0, startup_delay_ms=500.0),
        )
        baseline = sim.simulator.container_count("B")
        assert baseline >= 2
        # Kill a container mid-run; the next control period must restore it.
        sim.simulator.events.schedule(
            90_000.0, lambda t: sim.simulator.inject_container_failure("B")
        )
        result = sim.run()
        assert sim.simulator.container_count("B") >= baseline
        assert (
            result.simulation.completed["svc"]
            == result.simulation.generated["svc"]
        )


class TestDecisionLogUnderFailure:
    """The decision audit log pairs every crash with its recovery.

    Each injected failure must appear as a ``failure-injection`` record,
    and the control loop's reconcile that restores the lost capacity
    must appear later (causally ordered minutes) as a record with a
    positive delta on the same microservice.
    """

    def run_with_failures(self, failure_times_ms, seed=3):
        spec = ServiceSpec(
            "svc", DependencyGraph("svc", call("B")), workload=0.0, sla=200.0
        )
        simulated = {
            "B": SimulatedMicroservice("B", base_service_ms=5.0, threads=2)
        }
        profiles = {"B": analytic_profile("B", 5.0, 2)}
        sink = TelemetrySink()
        sim = AutoscaledSimulation(
            [spec],
            simulated,
            ErmsScaler(),
            profiles,
            rates={"svc": StaticRate(30_000.0)},
            config=SimulationConfig(duration_min=6.0, warmup_min=0.0, seed=seed),
            autoscale=AutoscaleConfig(interval_min=1.0, startup_delay_ms=500.0),
            telemetry=sink,
        )
        for when in failure_times_ms:
            sim.simulator.events.schedule(
                when, lambda t: sim.simulator.inject_container_failure("B")
            )
        sim.run()
        return sink.decisions.records

    def test_each_failure_pairs_with_a_reconcile(self):
        records = self.run_with_failures([90_000.0, 210_000.0])
        failures = [r for r in records if r.actor == "failure-injection"]
        assert len(failures) == 2
        for failure in failures:
            assert failure.microservice == "B"
            assert failure.delta == -1
            recoveries = [
                r
                for r in records
                if "reconcile" in r.reason
                and r.microservice == failure.microservice
                and r.minute > failure.minute
                and r.delta > 0
            ]
            assert recoveries, (
                f"failure at minute {failure.minute:.2f} never reconciled"
            )

    def test_records_are_causally_ordered(self):
        records = self.run_with_failures([90_000.0, 210_000.0])
        minutes = [r.minute for r in records]
        assert minutes == sorted(minutes)
        # The audit trail distinguishes who acted: injected crashes and
        # the control loop's reconciles both appear.
        actors = {r.actor for r in records}
        assert "failure-injection" in actors
        assert any("reconcile" in r.reason for r in records)

    def test_reason_distinguishes_retry_mode(self):
        spec = ServiceSpec(
            "svc", DependencyGraph("svc", call("B")), workload=0.0, sla=1e9
        )
        sink = TelemetrySink()
        sim = ClusterSimulator(
            [spec],
            {"B": SimulatedMicroservice("B", base_service_ms=5.0, threads=2)},
            containers={"B": 3},
            rates={"svc": 10_000.0},
            config=SimulationConfig(duration_min=1.0, warmup_min=0.0, seed=1),
            telemetry=sink,
        )
        sim.events.schedule(
            20_000.0, lambda t: sim.inject_container_failure("B")
        )
        sim.events.schedule(
            40_000.0,
            lambda t: sim.inject_container_failure("B", retry=False),
        )
        sim.run()
        reasons = [
            r.reason
            for r in sink.decisions.records
            if r.actor == "failure-injection"
        ]
        assert len(reasons) == 2
        assert "retried" in reasons[0]
        assert "lost" in reasons[1]
