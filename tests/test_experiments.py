"""Tests for repro.experiments: harness, sweeps, reporting."""

import numpy as np
import pytest

from repro.baselines import GrandSLAm
from repro.core import (
    ErmsScaler,
    InterferenceAwareProvisioner,
    KubernetesDefaultProvisioner,
)
from repro.experiments import (
    evaluate_allocation,
    fit_profiles_from_simulation,
    format_table,
    run_dynamic_workload,
    run_interference_comparison,
    run_static_sweep,
    run_trace_simulation,
    simulate_profiling_sweep,
)
from repro.experiments.interference import multipliers_from_placement
from repro.simulator import InterferenceModel, SimulatedMicroservice
from repro.workloads import DiurnalRate, generate_taobao, hotel_reservation


@pytest.fixture(scope="module")
def hotel():
    return hotel_reservation()


class TestFormatTable:
    def test_renders_columns(self):
        text = format_table([{"a": 1, "b": 2.5}, {"a": 10, "b": 0.25}], "T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        assert "2.50" in text and "0.25" in text

    def test_empty_rows(self):
        assert "(no rows)" in format_table([], "T")

    def test_missing_keys_fill_blank(self):
        text = format_table([{"a": 1, "b": 2}, {"a": 3}])
        assert text.count("\n") == 3


class TestEvaluateAllocation:
    def test_runs_allocation_on_simulator(self, hotel):
        profiles = hotel.analytic_profiles()
        specs = hotel.with_workloads(
            {s.name: 2000.0 for s in hotel.services}, sla=300.0
        )
        allocation = ErmsScaler().scale(specs, profiles)
        result = evaluate_allocation(
            specs, hotel.simulated, allocation, duration_min=0.5, warmup_min=0.1
        )
        assert result.completed["search-hotel"] > 0
        assert result.tail_latency("search-hotel") > 0

    def test_priority_allocation_enables_priority_scheduling(self, hotel):
        profiles = hotel.analytic_profiles()
        specs = hotel.with_workloads(
            {s.name: 2000.0 for s in hotel.services}, sla=300.0
        )
        allocation = ErmsScaler().scale(specs, profiles)
        assert allocation.priorities  # hotel shares microservices
        result = evaluate_allocation(
            specs, hotel.simulated, allocation, duration_min=0.3, warmup_min=0.1
        )
        assert sum(result.completed.values()) > 0


class TestProfilingSweep:
    def test_latency_grows_across_sweep(self):
        ms = SimulatedMicroservice("m", base_service_ms=10.0, threads=2)
        loads = np.array([2000.0, 10_000.0])  # capacity = 12k/min
        xs, ys = simulate_profiling_sweep(ms, loads, duration_min=0.6, seed=1)
        assert ys[1] > ys[0]

    def test_fit_profiles_from_simulation(self):
        simulated = {"m": SimulatedMicroservice("m", base_service_ms=10.0, threads=2)}
        profiles = fit_profiles_from_simulation(
            simulated, sweep_points=8, duration_min=0.5, seed=2
        )
        model = profiles["m"].model
        assert model.high.slope > model.low.slope
        assert 0 < model.cutoff < 12_000.0


class TestStaticSweep:
    def test_grid_covers_all_combinations(self, hotel):
        schemes = [ErmsScaler(), GrandSLAm()]
        sweep = run_static_sweep(
            hotel, schemes, workloads=[1000.0, 5000.0], slas=[200.0, 300.0]
        )
        assert len(sweep.rows) == 8
        assert set(sweep.schemes()) == {"erms", "grandslam"}

    def test_infeasible_sla_skipped(self, hotel):
        sweep = run_static_sweep(
            hotel, [ErmsScaler()], workloads=[1000.0], slas=[1.0, 300.0]
        )
        assert len(sweep.rows) == 1

    def test_savings_metric(self, hotel):
        sweep = run_static_sweep(
            hotel,
            [ErmsScaler(), GrandSLAm()],
            workloads=[40_000.0],
            slas=[250.0],
        )
        savings = sweep.savings_vs("erms", "grandslam")
        assert -1.0 < savings < 1.0

    def test_interference_blind_schemes_get_historic_profiles(self, hotel):
        aware = run_static_sweep(
            hotel,
            [GrandSLAm()],
            workloads=[40_000.0],
            slas=[250.0],
            interference_multiplier=1.0,
        )
        blind = run_static_sweep(
            hotel,
            [GrandSLAm()],
            workloads=[40_000.0],
            slas=[250.0],
            interference_multiplier=1.6,
        )
        # Planning with historic (lighter) profiles at true 1.6x colocation
        # yields fewer containers than the truth requires.
        truth = run_static_sweep(
            hotel,
            [ErmsScaler()],
            workloads=[40_000.0],
            slas=[250.0],
            interference_multiplier=1.6,
        )
        assert (
            blind.average_containers("grandslam")
            < truth.average_containers("erms")
        ) or (
            blind.average_containers("grandslam")
            >= aware.average_containers("grandslam")
        )

    def test_violation_accessors_require_simulation(self, hotel):
        sweep = run_static_sweep(
            hotel, [ErmsScaler()], workloads=[1000.0], slas=[300.0]
        )
        with pytest.raises(ValueError, match="no simulated rows"):
            sweep.average_violation("erms")

    def test_unknown_scheme_rejected(self, hotel):
        sweep = run_static_sweep(
            hotel, [ErmsScaler()], workloads=[1000.0], slas=[300.0]
        )
        with pytest.raises(ValueError, match="no rows"):
            sweep.average_containers("nope")


class TestDynamicWorkload:
    def test_time_series_shape(self, hotel):
        rate = DiurnalRate(base=2000.0, amplitude=0.5, period_min=12.0, seed=1)
        result = run_dynamic_workload(
            hotel,
            [ErmsScaler()],
            rate=rate,
            sla=300.0,
            total_min=9.0,
            window_min=3.0,
            sim_duration_min=0.3,
        )
        assert len(result.windows) == 3
        assert len(result.containers["erms"]) == 3
        assert result.mean_violation("erms") <= 1.0

    def test_containers_track_rate(self, hotel):
        rate = DiurnalRate(base=20_000.0, amplitude=0.7, period_min=24.0, seed=2)
        result = run_dynamic_workload(
            hotel,
            [ErmsScaler()],
            rate=rate,
            sla=300.0,
            total_min=24.0,
            window_min=3.0,
            sim_duration_min=0.2,
        )
        assert result.tracks_workload("erms") > 0.5

    def test_observation_lag_defers_scaling(self, hotel):
        # A step at minute 3; with a 3-minute lag the scheme still sizes
        # for the old rate in the second window.
        from repro.workloads import SteppedRate

        rate = SteppedRate(((0.0, 2_000.0), (3.0, 40_000.0)))
        result = run_dynamic_workload(
            hotel,
            [ErmsScaler()],
            rate=rate,
            sla=300.0,
            total_min=6.0,
            window_min=3.0,
            sim_duration_min=0.2,
            observation_lag_min=3.0,
        )
        assert result.containers["erms"][1] == result.containers["erms"][0]


class TestInterferenceComparison:
    def test_outputs_per_provisioner(self, hotel):
        result = run_interference_comparison(
            hotel,
            scaler=ErmsScaler(),
            provisioners=[
                InterferenceAwareProvisioner(),
                KubernetesDefaultProvisioner(),
            ],
            workload=3_000.0,
            sla=300.0,
            hosts=4,
            background=((26.0, 52_000.0),),
            duration_min=0.4,
            max_growth_rounds=3,
        )
        assert set(result.containers_needed) == {
            "erms-interference-aware",
            "k8s-default",
        }
        assert all(v > 0 for v in result.containers_needed.values())

    def test_multipliers_from_placement(self):
        from repro.core import Cluster, ContainerSpec

        cluster = Cluster.homogeneous(2)
        cluster.sizes["m"] = ContainerSpec()
        cluster.hosts[0].background_cpu = 30.0
        cluster.hosts[0].place("m", 2)
        cluster.hosts[1].place("m", 1)
        multipliers = multipliers_from_placement(cluster, InterferenceModel())
        assert len(multipliers["m"]) == 3
        assert max(multipliers["m"]) > min(multipliers["m"])


class TestTraceSimulation:
    def test_totals_and_distribution(self):
        workload = generate_taobao(n_services=8, seed=11)
        result = run_trace_simulation(
            workload, [ErmsScaler(), GrandSLAm()]
        )
        assert result.totals["erms"] > 0
        assert len(result.per_service["erms"]) == 8 - result.skipped_services
        assert 0.0 <= result.cdf_point("erms", 10**9) <= 1.0

    def test_reduction_factor(self):
        workload = generate_taobao(n_services=8, seed=11)
        result = run_trace_simulation(workload, [ErmsScaler(), GrandSLAm()])
        factor = result.reduction_factor("erms", "grandslam")
        assert factor > 0.5
