"""Tests for repro.core.provisioning: hosts, cluster, placement policies."""

import pytest

from repro.core import (
    Cluster,
    ContainerSpec,
    Host,
    InterferenceAwareProvisioner,
    KubernetesDefaultProvisioner,
)


def small_cluster(hosts=4, background=()):
    cluster = Cluster.homogeneous(hosts, cpu_capacity=32.0, memory_capacity_mb=64_000.0)
    for index, (cpu, mem) in enumerate(background):
        cluster.hosts[index].background_cpu = cpu
        cluster.hosts[index].background_memory_mb = mem
    cluster.sizes["ms"] = ContainerSpec(cpu=1.0, memory_mb=1000.0)
    return cluster


class TestHost:
    def test_place_and_release(self):
        host = Host("h0")
        host.place("a", 3)
        host.release("a", 2)
        assert host.container_count("a") == 1
        host.release("a")
        assert host.container_count("a") == 0
        assert "a" not in host.containers

    def test_release_more_than_placed_rejected(self):
        host = Host("h0")
        host.place("a")
        with pytest.raises(ValueError, match="cannot release"):
            host.release("a", 2)

    def test_utilization_includes_background(self):
        host = Host("h0", cpu_capacity=10.0, background_cpu=2.0)
        sizes = {"a": ContainerSpec(cpu=1.0, memory_mb=100.0)}
        host.place("a", 3)
        assert host.cpu_utilization(sizes) == pytest.approx(0.5)


class TestCluster:
    def test_homogeneous_factory(self):
        cluster = Cluster.homogeneous(20)
        assert len(cluster.hosts) == 20
        assert all(h.cpu_capacity == 32.0 for h in cluster.hosts)

    def test_placement_totals(self):
        cluster = small_cluster()
        cluster.hosts[0].place("ms", 2)
        cluster.hosts[1].place("ms", 3)
        assert cluster.placement() == {"ms": 5}

    def test_imbalance_zero_when_uniform(self):
        cluster = small_cluster()
        for host in cluster.hosts:
            host.place("ms", 2)
        assert cluster.imbalance() == pytest.approx(0.0)

    def test_imbalance_positive_when_skewed(self):
        cluster = small_cluster()
        cluster.hosts[0].place("ms", 8)
        assert cluster.imbalance() > 0.0


class TestInterferenceAwareProvisioner:
    def test_scales_up_to_desired(self):
        cluster = small_cluster()
        plan = InterferenceAwareProvisioner().apply(cluster, {"ms": 6})
        assert cluster.placement() == {"ms": 6}
        assert plan.placements() == 6 and plan.releases() == 0

    def test_scales_down_to_desired(self):
        cluster = small_cluster()
        InterferenceAwareProvisioner().apply(cluster, {"ms": 8})
        plan = InterferenceAwareProvisioner().apply(cluster, {"ms": 3})
        assert cluster.placement() == {"ms": 3}
        assert plan.releases() == 5

    def test_avoids_hosts_with_background_load(self):
        # One host runs heavy batch jobs; placements should dodge it.
        cluster = small_cluster(background=[(24.0, 48_000.0)])
        InterferenceAwareProvisioner().apply(cluster, {"ms": 6})
        loaded_host = cluster.hosts[0]
        others = cluster.hosts[1:]
        assert loaded_host.container_count() <= min(
            h.container_count() for h in others
        )

    def test_release_prefers_most_utilized_host(self):
        cluster = small_cluster(background=[(20.0, 40_000.0)])
        # Force containers everywhere, including the loaded host.
        for host in cluster.hosts:
            host.place("ms", 2)
        InterferenceAwareProvisioner().apply(cluster, {"ms": 7})
        assert cluster.hosts[0].container_count() == 1

    def test_balances_utilization(self):
        cluster = small_cluster()
        InterferenceAwareProvisioner().apply(cluster, {"ms": 8})
        counts = [h.container_count() for h in cluster.hosts]
        assert max(counts) - min(counts) <= 1

    def test_pop_groups_partition_hosts(self):
        provisioner = InterferenceAwareProvisioner(groups=2)
        cluster = small_cluster(hosts=8)
        parts = provisioner._partitions(cluster)
        assert len(parts) == 2
        assert sum(len(p) for p in parts) == 8

    def test_pop_still_reaches_desired_count(self):
        cluster = small_cluster(hosts=8)
        InterferenceAwareProvisioner(groups=4).apply(cluster, {"ms": 13})
        assert cluster.placement() == {"ms": 13}

    def test_invalid_groups_rejected(self):
        with pytest.raises(ValueError, match="groups"):
            InterferenceAwareProvisioner(groups=0)

    def test_release_without_containers_rejected(self):
        cluster = small_cluster()
        provisioner = InterferenceAwareProvisioner()
        with pytest.raises(ValueError, match="no host has containers"):
            provisioner.choose_release_host(cluster, "ms")

    def test_unknown_microservice_gets_default_size(self):
        cluster = small_cluster()
        InterferenceAwareProvisioner().apply(cluster, {"new-ms": 2})
        assert cluster.placement()["new-ms"] == 2
        assert "new-ms" in cluster.sizes


class TestKubernetesDefaultProvisioner:
    def test_ignores_background_interference(self):
        """The K8s baseline spreads evenly even onto the loaded host."""
        cluster = small_cluster(background=[(24.0, 48_000.0)])
        KubernetesDefaultProvisioner().apply(cluster, {"ms": 8})
        counts = [h.container_count() for h in cluster.hosts]
        # Pure request-based spreading: all hosts equal, including host 0.
        assert max(counts) - min(counts) <= 1
        assert cluster.hosts[0].container_count() == 2

    def test_interference_aware_beats_default_on_imbalance(self):
        background = [(20.0, 40_000.0), (10.0, 20_000.0)]
        aware = small_cluster(background=background)
        default = small_cluster(background=background)
        InterferenceAwareProvisioner().apply(aware, {"ms": 10})
        KubernetesDefaultProvisioner().apply(default, {"ms": 10})
        assert aware.imbalance() <= default.imbalance() + 1e-9

    def test_release_from_host_with_most_containers(self):
        cluster = small_cluster()
        cluster.hosts[2].place("ms", 5)
        cluster.hosts[1].place("ms", 1)
        KubernetesDefaultProvisioner().apply(cluster, {"ms": 4})
        assert cluster.hosts[2].container_count() == 3
