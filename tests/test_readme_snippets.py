"""The README's code blocks must actually run (doc regression tests)."""

import pathlib
import re

import pytest

README = pathlib.Path(__file__).parent.parent / "README.md"


def python_blocks():
    text = README.read_text()
    return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)


class TestReadme:
    def test_readme_exists_and_mentions_components(self):
        text = README.read_text()
        for needle in ("ErmsScaler", "DESIGN.md", "EXPERIMENTS.md", "benchmarks/"):
            assert needle in text

    def test_quickstart_block_executes(self):
        blocks = python_blocks()
        assert blocks, "README has no python code block"
        namespace = {}
        exec(compile(blocks[0], "<README quickstart>", "exec"), namespace)
        allocation = namespace["allocation"]
        assert allocation.total_containers() > 0
        assert "user-timeline" in allocation.containers

    def test_documented_examples_exist(self):
        text = README.read_text()
        examples_dir = pathlib.Path(__file__).parent.parent / "examples"
        for name in re.findall(r"`([a-z_]+\.py)`", text):
            assert (examples_dir / name).exists(), f"README references missing {name}"

    def test_paper_mapping_references_real_paths(self):
        mapping = pathlib.Path(__file__).parent.parent / "PAPER_MAPPING.md"
        root = pathlib.Path(__file__).parent.parent
        for path in re.findall(r"`(repro/[a-z_/]+\.py)`", mapping.read_text()):
            assert (root / "src" / path).exists(), f"missing {path}"
