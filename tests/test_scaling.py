"""Tests for repro.core.scaling: ErmsScaler pipeline and delta schedule."""

import pytest

from repro.core import (
    ErmsScaler,
    ScalingReport,
    ServiceSpec,
    delta_schedule_probabilities,
)
from repro.graphs import DependencyGraph, call

from tests.helpers import make_profile


def shared_pair(gamma1=40_000.0, gamma2=40_000.0, sla=300.0):
    svc1 = ServiceSpec(
        "svc1",
        DependencyGraph("svc1", call("U", stages=[[call("P")]])),
        workload=gamma1,
        sla=sla,
    )
    svc2 = ServiceSpec(
        "svc2",
        DependencyGraph("svc2", call("H", stages=[[call("P")]])),
        workload=gamma2,
        sla=sla,
    )
    profiles = {
        "U": make_profile("U", slope=4.0, intercept=5.0),
        "H": make_profile("H", slope=0.8, intercept=5.0),
        "P": make_profile("P", slope=1.0, intercept=2.0),
    }
    return [svc1, svc2], profiles


class TestErmsScaler:
    def test_allocation_covers_all_microservices(self):
        specs, profiles = shared_pair()
        allocation = ErmsScaler().scale(specs, profiles)
        assert set(allocation.containers) == {"U", "H", "P"}
        assert all(count >= 1 for count in allocation.containers.values())

    def test_priorities_recorded(self):
        specs, profiles = shared_pair()
        allocation = ErmsScaler().scale(specs, profiles)
        assert allocation.priorities["P"]["svc1"] == 0

    def test_fcfs_variant_has_no_priorities(self):
        specs, profiles = shared_pair()
        allocation = ErmsScaler(use_priority=False).scale(specs, profiles)
        assert allocation.priorities == {}

    def test_priority_uses_fewer_containers_than_fcfs(self):
        specs, profiles = shared_pair()
        with_priority = ErmsScaler().scale(specs, profiles).total_containers()
        without = (
            ErmsScaler(use_priority=False).scale(specs, profiles).total_containers()
        )
        assert with_priority < without

    def test_scheme_names(self):
        assert ErmsScaler().name == "erms"
        assert ErmsScaler(use_priority=False).name == "erms-fcfs"

    def test_with_workloads_rebuilds_specs(self):
        specs, _ = shared_pair()
        scaler = ErmsScaler()
        updated = scaler.with_workloads(specs, {"svc1": 123.0})
        assert updated[0].workload == 123.0
        assert updated[1].workload == specs[1].workload
        assert specs[0].workload == 40_000.0  # original untouched

    def test_targets_per_service(self):
        specs, profiles = shared_pair()
        allocation = ErmsScaler().scale(specs, profiles)
        assert set(allocation.targets["svc1"]) == {"U", "P"}
        assert set(allocation.targets["svc2"]) == {"H", "P"}

    def test_report_from_allocation(self):
        specs, profiles = shared_pair()
        allocation = ErmsScaler().scale(specs, profiles)
        report = ScalingReport.from_allocation("erms", allocation, profiles)
        assert report.total_containers == allocation.total_containers()
        assert report.per_microservice == allocation.containers


class TestDeltaScheduleProbabilities:
    def test_two_services(self):
        probs = delta_schedule_probabilities({"a": 0, "b": 1}, delta=0.05)
        assert probs["a"] == pytest.approx(0.95)
        assert probs["b"] == pytest.approx(0.05)

    def test_probabilities_sum_to_one(self):
        for n in range(1, 6):
            ranks = {f"s{i}": i for i in range(n)}
            probs = delta_schedule_probabilities(ranks, delta=0.05)
            assert sum(probs.values()) == pytest.approx(1.0)

    def test_single_service_gets_everything(self):
        probs = delta_schedule_probabilities({"only": 0}, delta=0.05)
        assert probs["only"] == pytest.approx(1.0)

    def test_delta_zero_is_strict_priority(self):
        probs = delta_schedule_probabilities({"a": 0, "b": 1, "c": 2}, delta=0.0)
        assert probs == {"a": 1.0, "b": 0.0, "c": 0.0}

    def test_monotone_in_rank(self):
        ranks = {f"s{i}": i for i in range(5)}
        probs = delta_schedule_probabilities(ranks, delta=0.05)
        ordered = [probs[f"s{i}"] for i in range(5)]
        assert ordered == sorted(ordered, reverse=True)

    def test_invalid_delta_rejected(self):
        with pytest.raises(ValueError, match="delta"):
            delta_schedule_probabilities({"a": 0}, delta=1.0)
        with pytest.raises(ValueError, match="delta"):
            delta_schedule_probabilities({"a": 0}, delta=-0.1)


class TestSharedScalingHelpers:
    def test_combined_shared_workloads(self):
        from repro.core.scaling import combined_shared_workloads

        specs, _ = shared_pair(gamma1=10_000.0, gamma2=5_000.0)
        combined = combined_shared_workloads(specs)
        assert combined["P"] == pytest.approx(15_000.0)
        assert combined["U"] == pytest.approx(10_000.0)

    def test_apply_fcfs_shared_scaling_uses_min_target(self):
        from repro.core.model import Allocation, best_effort_containers
        from repro.core.scaling import apply_fcfs_shared_scaling

        specs, profiles = shared_pair(gamma1=10_000.0, gamma2=10_000.0)
        targets = {
            "svc1": {"U": 100.0, "P": 40.0},
            "svc2": {"H": 150.0, "P": 90.0},
        }
        allocation = Allocation(containers={"P": 1})
        apply_fcfs_shared_scaling(specs, profiles, targets, allocation)
        expected = best_effort_containers(profiles["P"].model, 20_000.0, 40.0)
        assert allocation.containers["P"] == expected

    def test_apply_fcfs_ignores_unshared(self):
        from repro.core.model import Allocation
        from repro.core.scaling import apply_fcfs_shared_scaling

        specs, profiles = shared_pair()
        targets = {
            "svc1": {"U": 100.0, "P": 40.0},
            "svc2": {"H": 150.0, "P": 90.0},
        }
        allocation = Allocation(containers={"U": 3})
        apply_fcfs_shared_scaling(specs, profiles, targets, allocation)
        assert allocation.containers["U"] == 3  # untouched: not shared
