"""Tests for repro.baselines: GrandSLAm, Rhythm, Firm."""

import pytest

from repro.baselines import Firm, GrandSLAm, MicroserviceStats, Rhythm
from repro.baselines.base import stats_from_profiles, targets_from_weights
from repro.core import ErmsScaler, ServiceSpec, predicted_end_to_end
from repro.graphs import DependencyGraph, call
from repro.workloads import social_network

from tests.helpers import make_profile


def sensitive_pair(workload=20_000.0, sla=300.0):
    """U (sensitive) -> P (insensitive), the Fig. 4 scenario."""
    graph = DependencyGraph("svc", call("U", stages=[[call("P")]]))
    profiles = {
        "U": make_profile("U", slope=4.0, intercept=5.0),
        "P": make_profile("P", slope=0.5, intercept=2.0),
    }
    return [ServiceSpec("svc", graph, workload=workload, sla=sla)], profiles


class TestStats:
    def test_stats_are_positive(self):
        specs, profiles = sensitive_pair()
        stats = stats_from_profiles(specs[0], profiles)
        for value in stats.values():
            assert value.mean > 0
            assert value.variance >= 0
            assert 0.0 <= value.correlation <= 1.0

    def test_sensitive_microservice_has_higher_variance(self):
        specs, profiles = sensitive_pair()
        stats = stats_from_profiles(specs[0], profiles)
        assert stats["U"].variance > stats["P"].variance

    def test_invalid_stats_rejected(self):
        with pytest.raises(ValueError):
            MicroserviceStats(mean=-1.0, variance=0.0, correlation=0.0)

    def test_targets_from_weights_proportional(self):
        specs, _ = sensitive_pair(sla=100.0)
        targets = targets_from_weights(specs[0], {"U": 3.0, "P": 1.0})
        assert targets["U"] == pytest.approx(75.0)
        assert targets["P"] == pytest.approx(25.0)

    def test_targets_zero_weights_fall_back_uniform(self):
        specs, _ = sensitive_pair(sla=100.0)
        targets = targets_from_weights(specs[0], {"U": 0.0, "P": 0.0})
        assert targets["U"] == pytest.approx(50.0)

    def test_targets_respect_sla_along_paths(self):
        app = social_network()
        profiles = app.analytic_profiles()
        spec = app.services[0]
        stats = stats_from_profiles(spec, profiles)
        targets = targets_from_weights(
            spec, {n: s.mean for n, s in stats.items()}
        )
        for path in spec.graph.critical_paths():
            assert sum(targets[name] for name in path) <= spec.sla + 1e-9


class TestGrandSLAm:
    def test_allocation_meets_sla_analytically(self):
        specs, profiles = sensitive_pair()
        allocation = GrandSLAm().scale(specs, profiles)
        e2e = predicted_end_to_end(specs[0], profiles, allocation.containers)
        assert e2e <= specs[0].sla + 1e-9

    def test_uses_more_containers_than_erms_under_load(self):
        """The Fig. 4b result: fixed mean-based splits waste resources."""
        specs, profiles = sensitive_pair(workload=60_000.0, sla=250.0)
        grandslam = GrandSLAm().scale(specs, profiles).total_containers()
        erms = ErmsScaler().scale(specs, profiles).total_containers()
        assert erms <= grandslam

    def test_priority_variant_sets_ranks(self):
        app = social_network()
        profiles = app.analytic_profiles()
        specs = app.with_workloads({s.name: 10_000.0 for s in app.services})
        allocation = GrandSLAm(use_priority=True).scale(specs, profiles)
        assert allocation.priorities
        assert GrandSLAm(use_priority=True).name == "grandslam+priority"

    def test_plain_variant_has_no_priorities(self):
        specs, profiles = sensitive_pair()
        allocation = GrandSLAm().scale(specs, profiles)
        assert allocation.priorities == {}


class TestRhythm:
    def test_allocation_meets_sla_analytically(self):
        specs, profiles = sensitive_pair()
        allocation = Rhythm().scale(specs, profiles)
        e2e = predicted_end_to_end(specs[0], profiles, allocation.containers)
        assert e2e <= specs[0].sla + 1e-9

    def test_every_microservice_allocated(self):
        app = social_network()
        profiles = app.analytic_profiles()
        specs = app.with_workloads({s.name: 10_000.0 for s in app.services})
        allocation = Rhythm().scale(specs, profiles)
        assert set(allocation.containers) == set(app.microservices())

    def test_differs_from_grandslam(self):
        """Variance/correlation weighting changes the split."""
        specs, profiles = sensitive_pair(workload=60_000.0)
        rhythm_targets = Rhythm().scale(specs, profiles).targets["svc"]
        grandslam_targets = GrandSLAm().scale(specs, profiles).targets["svc"]
        assert rhythm_targets["U"] != pytest.approx(grandslam_targets["U"])


class TestFirm:
    def test_identifies_sensitive_microservice_as_critical(self):
        specs, profiles = sensitive_pair()
        firm = Firm()
        observed = specs[0].microservice_workloads()
        critical = firm._critical_microservices(specs[0], profiles, observed)
        assert critical == {"U"}

    def test_tunes_until_sla_met_when_possible(self):
        specs, profiles = sensitive_pair(workload=30_000.0, sla=300.0)
        allocation = Firm().scale(specs, profiles)
        e2e = predicted_end_to_end(specs[0], profiles, allocation.containers)
        assert e2e <= specs[0].sla * 1.05

    def test_noncritical_keep_baseline_allocation(self):
        specs, profiles = sensitive_pair(workload=30_000.0, sla=300.0)
        firm = Firm()
        observed = specs[0].microservice_workloads()
        baseline = firm._baseline_allocation(specs[0], profiles, observed)
        allocation = firm.scale(specs, profiles)
        assert allocation.containers["P"] == baseline["P"]

    def test_iteration_budget_caps_work(self):
        # An SLA below the latency floor can never be met; Firm must stop.
        specs, profiles = sensitive_pair(workload=50_000.0, sla=8.0)
        allocation = Firm(max_iterations=10).scale(specs, profiles)
        assert allocation.total_containers() > 0  # terminated, best effort

    def test_scales_social_network(self):
        app = social_network()
        profiles = app.analytic_profiles()
        specs = app.with_workloads({s.name: 20_000.0 for s in app.services})
        allocation = Firm().scale(specs, profiles)
        assert set(allocation.containers) == set(app.microservices())


class TestSchemeComparison:
    def test_erms_is_most_efficient_at_high_load(self):
        """The headline Fig. 11 ordering on the Social Network app."""
        app = social_network()
        profiles = app.analytic_profiles()
        specs = app.with_workloads(
            {s.name: 60_000.0 for s in app.services}, sla=200.0
        )
        erms = ErmsScaler().scale(specs, profiles).total_containers()
        others = [
            scheme.scale(specs, profiles).total_containers()
            for scheme in (GrandSLAm(), Rhythm(), Firm())
        ]
        assert all(erms <= other for other in others)

    def test_savings_grow_with_workload(self):
        """Fig. 11b: the gap between Erms and baselines widens with load."""
        app = social_network()
        profiles = app.analytic_profiles()

        def gap(load):
            specs = app.with_workloads(
                {s.name: load for s in app.services}, sla=200.0
            )
            erms = ErmsScaler().scale(specs, profiles).total_containers()
            grandslam = GrandSLAm().scale(specs, profiles).total_containers()
            return grandslam - erms

        assert gap(60_000.0) >= gap(5_000.0)
