"""Tests for repro.profiling: piecewise fit, tree, Eq. 15 model, metrics."""

import numpy as np
import pytest

from repro.profiling import (
    DecisionTreeRegressor,
    ProfilingDataset,
    SyntheticMicroservice,
    accuracy_score,
    fit_interference_model,
    fit_piecewise,
    generate_synthetic_day,
    mape,
    r_squared,
    within_tolerance,
)


def synthetic_piecewise(n=300, cutoff=100.0, a1=0.05, a2=1.0, b=5.0, noise=0.0, seed=0):
    rng = np.random.default_rng(seed)
    loads = rng.uniform(1.0, 250.0, size=n)
    b2 = b + (a1 - a2) * cutoff  # continuous at the cutoff (may be negative)
    latencies = np.where(loads <= cutoff, a1 * loads + b, a2 * loads + b2)
    if noise:
        latencies = latencies * rng.lognormal(0.0, noise)
    return loads, latencies


class TestFitPiecewise:
    def test_recovers_cutoff(self):
        loads, latencies = synthetic_piecewise()
        fit = fit_piecewise(loads, latencies)
        assert fit.model.cutoff == pytest.approx(100.0, rel=0.15)

    def test_recovers_slopes(self):
        loads, latencies = synthetic_piecewise()
        fit = fit_piecewise(loads, latencies)
        assert fit.model.low.slope == pytest.approx(0.05, rel=0.3)
        assert fit.model.high.slope == pytest.approx(1.0, rel=0.15)

    def test_high_r_squared_on_clean_data(self):
        loads, latencies = synthetic_piecewise()
        fit = fit_piecewise(loads, latencies)
        assert fit.r_squared > 0.99

    def test_robust_to_noise(self):
        loads, latencies = synthetic_piecewise(noise=0.1, seed=7)
        fit = fit_piecewise(loads, latencies)
        assert fit.r_squared > 0.85
        assert fit.model.high.slope == pytest.approx(1.0, rel=0.3)

    def test_predict_matches_model(self):
        loads, latencies = synthetic_piecewise()
        fit = fit_piecewise(loads, latencies)
        grid = np.array([10.0, 150.0])
        predictions = fit.predict(grid)
        assert predictions[0] == pytest.approx(fit.model.latency(10.0))
        assert predictions[1] == pytest.approx(fit.model.latency(150.0))

    def test_single_line_data_falls_back(self):
        rng = np.random.default_rng(0)
        loads = rng.uniform(1.0, 100.0, 50)
        latencies = 2.0 * loads + 1.0
        fit = fit_piecewise(loads, latencies)
        # Both segments should be (nearly) the same line.
        assert fit.model.low.slope == pytest.approx(2.0, rel=0.05)
        assert fit.model.high.slope == pytest.approx(2.0, rel=0.05)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="same shape"):
            fit_piecewise(np.ones(3), np.ones(4))

    def test_too_few_samples_rejected(self):
        with pytest.raises(ValueError, match="at least 2"):
            fit_piecewise(np.array([1.0]), np.array([1.0]))

    def test_negative_intercepts_are_fitted_unbiased(self):
        """The steep segment's extrapolated intercept may be negative."""
        rng = np.random.default_rng(3)
        loads = rng.uniform(50.0, 100.0, 200)
        latencies = 3.0 * loads - 100.0 + rng.normal(0, 1, 200)
        fit = fit_piecewise(loads, latencies)
        assert fit.model.high.slope == pytest.approx(3.0, rel=0.1)
        assert fit.model.high.intercept == pytest.approx(-100.0, rel=0.2)


class TestDecisionTree:
    def test_fits_step_function(self):
        x = np.linspace(0, 1, 100).reshape(-1, 1)
        y = np.where(x.ravel() < 0.5, 1.0, 5.0)
        tree = DecisionTreeRegressor(max_depth=2, min_samples_leaf=2)
        tree.fit(x, y)
        assert tree.predict(np.array([[0.2]]))[0] == pytest.approx(1.0)
        assert tree.predict(np.array([[0.8]]))[0] == pytest.approx(5.0)

    def test_respects_max_depth(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(0, 1, (200, 2))
        y = x[:, 0] * 3 + x[:, 1] + rng.normal(0, 0.01, 200)
        tree = DecisionTreeRegressor(max_depth=3).fit(x, y)
        assert tree.depth() <= 3

    def test_constant_target_single_leaf(self):
        x = np.arange(20, dtype=float).reshape(-1, 1)
        y = np.full(20, 7.0)
        tree = DecisionTreeRegressor().fit(x, y)
        assert tree.depth() == 0
        assert tree.predict(np.array([[100.0]]))[0] == pytest.approx(7.0)

    def test_predict_before_fit_rejected(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            DecisionTreeRegressor().predict(np.zeros((1, 1)))

    def test_empty_fit_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            DecisionTreeRegressor().fit(np.zeros((0, 2)), np.zeros(0))

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ValueError, match="feature rows"):
            DecisionTreeRegressor().fit(np.zeros((3, 2)), np.zeros(4))

    def test_min_samples_leaf_enforced(self):
        x = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = np.array([0.0, 0.0, 10.0, 10.0])
        tree = DecisionTreeRegressor(max_depth=5, min_samples_leaf=3).fit(x, y)
        # No split can leave 3 on both sides of 4 samples.
        assert tree.depth() == 0

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            DecisionTreeRegressor(max_depth=-1)
        with pytest.raises(ValueError):
            DecisionTreeRegressor(min_samples_leaf=0)


class TestInterferenceModel:
    def test_fits_synthetic_ground_truth(self):
        truth = SyntheticMicroservice()
        data = generate_synthetic_day(truth, noise=0.03, seed=1)
        train, test = data.split(22 / 24)
        model = fit_interference_model(
            train.loads, train.cpus, train.memories, train.latencies
        )
        predictions = model.predict(test.loads, test.cpus, test.memories)
        assert accuracy_score(test.latencies, predictions) > 0.75

    def test_slope_grows_with_interference(self):
        """The Fig. 3 observation: busier hosts mean steeper latency."""
        truth = SyntheticMicroservice()
        data = generate_synthetic_day(truth, noise=0.02, seed=2)
        model = fit_interference_model(
            data.loads, data.cpus, data.memories, data.latencies
        )
        calm = model.model_at(0.2, 0.2)
        busy = model.model_at(0.8, 0.8)
        assert busy.high.slope > calm.high.slope

    def test_cutoff_moves_forward_with_interference(self):
        truth = SyntheticMicroservice(sigma_slope=0.6)
        data = generate_synthetic_day(truth, noise=0.02, seed=3, minutes=2880)
        model = fit_interference_model(
            data.loads, data.cpus, data.memories, data.latencies
        )
        assert model.cutoff(0.8, 0.8) < model.cutoff(0.15, 0.15)

    def test_model_at_produces_valid_piecewise(self):
        truth = SyntheticMicroservice()
        data = generate_synthetic_day(truth, seed=4)
        model = fit_interference_model(
            data.loads, data.cpus, data.memories, data.latencies
        )
        conditioned = model.model_at(0.5, 0.5)
        assert conditioned.low.slope > 0
        assert conditioned.high.slope > 0
        assert conditioned.cutoff > 0

    def test_mismatched_arrays_rejected(self):
        with pytest.raises(ValueError, match="same length"):
            fit_interference_model(
                np.ones(10), np.ones(9), np.ones(10), np.ones(10)
            )

    def test_too_few_samples_rejected(self):
        with pytest.raises(ValueError, match="at least 8"):
            fit_interference_model(
                np.ones(4), np.ones(4), np.ones(4), np.ones(4)
            )


class TestDataset:
    def test_generate_shapes(self):
        data = generate_synthetic_day(SyntheticMicroservice(), minutes=120)
        assert len(data) == 120
        assert data.features().shape == (120, 3)

    def test_split_chronological(self):
        data = generate_synthetic_day(SyntheticMicroservice(), minutes=100)
        train, test = data.split(0.8)
        assert len(train) == 80 and len(test) == 20
        assert np.array_equal(train.loads, data.loads[:80])

    def test_split_bounds(self):
        data = generate_synthetic_day(SyntheticMicroservice(), minutes=100)
        with pytest.raises(ValueError, match="train_fraction"):
            data.split(0.0)

    def test_subsample(self):
        data = generate_synthetic_day(SyntheticMicroservice(), minutes=200)
        sub = data.subsample(0.25, seed=1)
        assert len(sub) == 50

    def test_interference_fixed_within_hour(self):
        data = generate_synthetic_day(SyntheticMicroservice(), minutes=120)
        assert len(set(data.cpus[:60])) == 1
        assert len(set(data.cpus[60:120])) == 1

    def test_custom_interference_levels(self):
        levels = np.array([[0.3, 0.4], [0.7, 0.8]])
        data = generate_synthetic_day(
            SyntheticMicroservice(), minutes=120, interference_levels=levels
        )
        assert data.cpus[0] == pytest.approx(0.3)
        assert data.memories[90] == pytest.approx(0.8)

    def test_insufficient_interference_levels_rejected(self):
        with pytest.raises(ValueError, match="hours"):
            generate_synthetic_day(
                SyntheticMicroservice(),
                minutes=180,
                interference_levels=np.array([[0.3, 0.4]]),
            )

    def test_mismatched_arrays_rejected(self):
        with pytest.raises(ValueError, match="same length"):
            ProfilingDataset(np.ones(3), np.ones(3), np.ones(3), np.ones(2))


class TestAccuracyMetrics:
    def test_perfect_prediction(self):
        y = np.array([1.0, 2.0, 3.0])
        assert accuracy_score(y, y) == pytest.approx(1.0)
        assert mape(y, y) == pytest.approx(0.0)
        assert r_squared(y, y) == pytest.approx(1.0)
        assert within_tolerance(y, y) == pytest.approx(1.0)

    def test_known_mape(self):
        actual = np.array([10.0, 20.0])
        predicted = np.array([11.0, 18.0])
        assert mape(actual, predicted) == pytest.approx(0.1)
        assert accuracy_score(actual, predicted) == pytest.approx(0.9)

    def test_accuracy_clipped_at_zero(self):
        actual = np.array([1.0])
        predicted = np.array([10.0])
        assert accuracy_score(actual, predicted) == 0.0

    def test_mape_requires_positive_actuals(self):
        with pytest.raises(ValueError, match="positive"):
            mape(np.array([0.0]), np.array([1.0]))

    def test_within_tolerance_fraction(self):
        actual = np.array([10.0, 10.0, 10.0, 10.0])
        predicted = np.array([10.5, 11.0, 13.0, 20.0])
        # relative errors 0.05, 0.1, 0.3, 1.0 -> two within 20%
        assert within_tolerance(actual, predicted, 0.2) == pytest.approx(0.5)

    def test_r_squared_of_mean_prediction_is_zero(self):
        actual = np.array([1.0, 2.0, 3.0])
        predicted = np.full(3, 2.0)
        assert r_squared(actual, predicted) == pytest.approx(0.0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="shape mismatch"):
            mape(np.ones(2), np.ones(3))
