"""Embedded TSDB: store, query layer, rules engine, and sim integration."""

import pytest

from repro.core.model import ServiceSpec
from repro.graphs import DependencyGraph, call
from repro.simulator import (
    ClusterSimulator,
    SimulatedMicroservice,
    SimulationConfig,
)
from repro.telemetry import (
    TelemetryConfig,
    TelemetrySink,
    TimeSeriesConfig,
    TimeSeriesStore,
)
from repro.telemetry.timeseries import (
    RuleEngine,
    RuleSet,
    Series,
    parse_expr,
    parse_metric_name,
    parse_selector,
)
from repro.telemetry.timeseries.rules import RULES_ACTOR


def run_instrumented(scrape_interval=0.1, rules=None, seed=42):
    """The golden shared-fanout configuration with a TSDB attached."""
    store = TimeSeriesStore(
        TimeSeriesConfig(scrape_interval_min=scrape_interval), rules=rules
    )
    sink = TelemetrySink(
        config=TelemetryConfig(window_min=0.25, spans=False, max_traces=0),
        timeseries=store,
    )
    s1 = ServiceSpec(
        "s1",
        DependencyGraph("s1", call("F", stages=[[call("P"), call("Q")]])),
        0.0,
        300.0,
    )
    s2 = ServiceSpec(
        "s2", DependencyGraph("s2", call("G", stages=[[call("P")]])), 0.0, 300.0
    )
    result = ClusterSimulator(
        [s1, s2],
        {
            "F": SimulatedMicroservice("F", 4.0, 2),
            "G": SimulatedMicroservice("G", 6.0, 2),
            "P": SimulatedMicroservice("P", 3.0, 4),
            "Q": SimulatedMicroservice("Q", 5.0, 2),
        },
        containers={"F": 2, "G": 2, "P": 2, "Q": 2},
        rates={"s1": 9_000.0, "s2": 6_000.0},
        config=SimulationConfig(duration_min=0.5, warmup_min=0.1, seed=seed),
        telemetry=sink,
    ).run()
    return sink, store, result


class TestSeries:
    def test_append_and_window(self):
        s = Series("x", {})
        for i in range(10):
            s.append(i * 0.5, float(i))
        assert len(s) == 10
        assert s.window(1.0, 2.0) == [(1.0, 2.0), (1.5, 3.0), (2.0, 4.0)]
        assert s.last() == (4.5, 9.0)
        assert s.last(at=1.7) == (1.5, 3.0)

    def test_out_of_order_append_rejected(self):
        s = Series("x", {})
        s.append(1.0, 1.0)
        with pytest.raises(ValueError):
            s.append(0.5, 2.0)

    def test_ring_eviction_feeds_downsample_levels(self):
        s = Series("x", {}, raw_capacity=16, downsample_factor=4,
                   downsample_levels=2, level_capacity=8)
        for i in range(64):
            s.append(float(i), float(i))
        assert len(s) == 16  # raw ring holds only the newest 16
        assert not s.raw_covers(0.0)
        # evicted history is still answerable through bins
        bins = s.bins(0.0, 20.0)
        assert bins
        assert bins[0].start == 0.0
        assert bins[0].min == 0.0
        total = sum(b.count for b in s.bins(0.0, 64.0))
        assert total >= 64 - 16  # everything evicted is in some bin

    def test_bin_stats(self):
        s = Series("x", {}, raw_capacity=4, downsample_factor=4,
                   downsample_levels=1, level_capacity=8)
        for i, v in enumerate([1.0, 5.0, 3.0, 7.0, 0.0, 0.0, 0.0, 0.0]):
            s.append(float(i), v)
        first = s.bins(0.0, 3.0)[0]
        assert first.min == 1.0 and first.max == 7.0
        assert first.sum == 16.0 and first.count == 4
        assert first.mean == 4.0


class TestNaming:
    def test_parse_metric_name_conventions(self):
        assert parse_metric_name("e2e_latency_ms.compose-post") == (
            "e2e_latency_ms", {"service": "compose-post"}
        )
        assert parse_metric_name("request_errors.s1.failed") == (
            "request_errors", {"service": "s1", "kind": "failed"}
        )
        assert parse_metric_name("breaker_state.s1.F") == (
            "breaker_state", {"service": "s1", "microservice": "F"}
        )
        assert parse_metric_name("queue_depth") == ("queue_depth", {})

    def test_selector_parsing(self):
        sel = parse_selector('e2e_latency_ms{service="s1",stat!="p50"}')
        assert sel.name == "e2e_latency_ms"
        s_match = Series("e2e_latency_ms", {"service": "s1", "stat": "p95"})
        s_miss = Series("e2e_latency_ms", {"service": "s1", "stat": "p50"})
        assert sel.matches(s_match)
        assert not sel.matches(s_miss)

    def test_bad_expressions_raise(self):
        with pytest.raises(ValueError):
            parse_expr("rate(foo)")  # missing range
        with pytest.raises(ValueError):
            parse_expr("nosuch_func(foo[1m])")
        with pytest.raises(ValueError):
            parse_selector("foo{bad}")


class TestQueries:
    def test_range_functions_on_manual_data(self):
        store = TimeSeriesStore(TimeSeriesConfig())
        for i in range(8):
            store.record("lat.s1", None, i * 0.25, float(10 + i))
        q = lambda e: [v for _, v in store.query(e)]
        assert q('lat{service="s1"}') == [17.0]
        assert q('avg_over_time(lat{service="s1"}[2m])') == [13.5]
        assert q('min_over_time(lat{service="s1"}[2m])') == [10.0]
        assert q('max_over_time(lat{service="s1"}[2m])') == [17.0]
        assert q('sum_over_time(lat{service="s1"}[2m])') == [108.0]
        assert q('count_over_time(lat{service="s1"}[2m])') == [8.0]

    def test_rate_handles_counter_reset(self):
        store = TimeSeriesStore(TimeSeriesConfig())
        for t, v in [(0.0, 0.0), (1.0, 10.0), (2.0, 2.0), (3.0, 6.0)]:
            store.record("ctr", {}, t, v)
        # positive deltas only: 10 + 2 + 4 = 16 over 3 minutes
        [(_, value)] = store.query("rate(ctr[10m])", at=3.0)
        assert value == pytest.approx(16.0 / 3.0)

    def test_quantile_over_time(self):
        store = TimeSeriesStore(TimeSeriesConfig())
        for i in range(100):
            store.record("lat", {}, i * 0.01, float(i + 1))
        [(_, p95)] = store.query("quantile_over_time(0.95, lat[5m])")
        assert p95 == 95.0

    def test_empty_window_returns_none(self):
        store = TimeSeriesStore(TimeSeriesConfig())
        store.record("lat", {}, 10.0, 1.0)
        [(_, value)] = store.query("avg_over_time(lat[1m])", at=5.0)
        assert value is None


class TestScraping:
    def test_scrape_cadence_and_final_scrape(self):
        _, store, _ = run_instrumented(scrape_interval=0.1)
        # 0.1..0.5 in 0.1 steps: 5 scheduled scrapes; the final one lands
        # exactly on the duration so no extra finalize scrape is added.
        assert store.scrapes == 5
        assert store.last_scrape_min == pytest.approx(0.5)
        depth = store.get("queue_depth")
        assert [round(t, 6) for t in depth.times] == [0.1, 0.2, 0.3, 0.4, 0.5]

    def test_histogram_scrape_emits_windowed_stats(self):
        sink, store, _ = run_instrumented()
        for stat in ("count", "rate_per_min", "mean", "p50", "p95", "p99"):
            series = store.get("e2e_latency_ms", {"service": "s1", "stat": stat})
            assert series is not None, stat
            assert len(series) >= 4
        counts = store.get("e2e_latency_ms", {"service": "s1", "stat": "count"})
        # per-scrape count deltas sum back to the histogram's total
        assert sum(counts.values) == (
            sink.registry.histograms["e2e_latency_ms.s1"].count
        )

    def test_monitor_windows_become_series(self):
        sink, store, _ = run_instrumented()
        for service in ("s1", "s2"):
            miss = store.get("sla_miss_rate", {"service": service})
            expected = [w for w in sink.monitor.windows if w.service == service]
            assert miss is not None
            assert len(miss) == len(expected)
            for (t, v), w in zip(zip(miss.times, miss.values), expected):
                assert t == pytest.approx(w.start_min + 0.25)
                assert v == pytest.approx(w.violation_rate)

    def test_two_runs_identical(self):
        _, store_a, _ = run_instrumented()
        _, store_b, _ = run_instrumented()
        assert sorted(store_a.series) == sorted(store_b.series)
        for key in store_a.series:
            sa, sb = store_a.series[key], store_b.series[key]
            assert list(sa.times) == list(sb.times), key
            assert list(sa.values) == list(sb.values), key

    def test_store_not_reusable_across_runs(self):
        _, store, _ = run_instrumented()
        sink = TelemetrySink(
            config=TelemetryConfig(window_min=0.25, spans=False, max_traces=0),
            timeseries=store,
        )
        spec = ServiceSpec("svc", DependencyGraph("svc", call("B")), 0.0, 100.0)
        sim = ClusterSimulator(
            [spec],
            {"B": SimulatedMicroservice("B", base_service_ms=5.0, threads=4)},
            containers={"B": 1},
            rates={"svc": 1_000.0},
            config=SimulationConfig(duration_min=0.2, warmup_min=0.0, seed=1),
            telemetry=sink,
        )
        with pytest.raises(RuntimeError):
            sim.run()


class TestRules:
    def test_alert_fires_and_resolves_through_monitor_and_log(self):
        store = TimeSeriesStore(TimeSeriesConfig())
        ruleset = RuleSet.from_dict({
            "rules": [
                {"alert": "QueueDeep", "expr": "depth", "op": ">",
                 "threshold": 5.0, "severity": "critical"},
            ]
        })
        engine = RuleEngine(store, ruleset)

        class FakeMonitor:
            rule_alerts = []

        from repro.telemetry import DecisionLog
        monitor, decisions = FakeMonitor(), DecisionLog()
        for t, v in [(1.0, 2.0), (2.0, 9.0), (3.0, 9.0), (4.0, 1.0)]:
            store.record("depth", {}, t, v)
            engine.evaluate(t, monitor=monitor, decisions=decisions)
        assert len(engine.alerts) == 1
        alert = engine.alerts[0]
        assert alert.minute == 2.0 and alert.value == 9.0
        assert monitor.rule_alerts == [alert]
        reasons = [r.reason for r in decisions.records]
        assert any("fired" in r or "QueueDeep" in r for r in reasons)
        assert any("resolved" in r for r in reasons)
        assert all(r.actor == RULES_ACTOR for r in decisions.records)
        assert not engine.firing

    def test_for_duration_defers_firing(self):
        store = TimeSeriesStore(TimeSeriesConfig())
        ruleset = RuleSet.from_dict({
            "rules": [
                {"alert": "Sustained", "expr": "depth", "op": ">=",
                 "threshold": 5.0, "for": 2.0},
            ]
        })
        engine = RuleEngine(store, ruleset)
        for t in (1.0, 2.0):
            store.record("depth", {}, t, 9.0)
            engine.evaluate(t)
        assert not engine.alerts  # held only 1 min so far
        store.record("depth", {}, 3.0, 9.0)
        engine.evaluate(3.0)
        assert len(engine.alerts) == 1
        assert engine.alerts[0].minute == 3.0

    def test_recording_rule_materializes_series(self):
        store = TimeSeriesStore(TimeSeriesConfig())
        ruleset = RuleSet.from_dict({
            "rules": [
                {"record": "depth_avg",
                 "expr": "avg_over_time(depth[2m])"},
            ]
        })
        engine = RuleEngine(store, ruleset)
        for t, v in [(1.0, 2.0), (2.0, 4.0)]:
            store.record("depth", {}, t, v)
            engine.evaluate(t)
        recorded = store.get("depth_avg")
        assert recorded is not None
        assert list(recorded.values) == [2.0, 3.0]

    def test_malformed_rules_fail_at_construction(self):
        store = TimeSeriesStore(TimeSeriesConfig())
        with pytest.raises(ValueError):
            RuleSet.from_dict({"rules": [{"alert": "X", "expr": "d",
                                          "op": "~", "threshold": 1.0}]})
        with pytest.raises(ValueError):
            RuleEngine(store, RuleSet.from_dict({
                "rules": [{"record": "r", "expr": "rate(d)"}]
            }))

    def test_rules_fire_inside_simulated_run(self):
        rules = {
            "rules": [
                {"alert": "AnyTraffic",
                 "expr": 'e2e_latency_ms{service="s1",stat="count"}',
                 "op": ">", "threshold": 0.0},
            ]
        }
        sink, store, _ = run_instrumented(rules=rules)
        assert store.engine is not None
        assert len(store.engine.alerts) == 1  # fires once, stays firing
        assert sink.monitor.rule_alerts == store.engine.alerts
        assert sink.decisions.by_actor(RULES_ACTOR)


class TestGoldenNeutrality:
    def test_roundtrip_to_dict(self):
        _, store, _ = run_instrumented()
        dump = store.to_dict(max_points=4)
        assert dump["scrapes"] == store.scrapes
        assert dump["samples"] == store.total_samples
        assert all(len(s["points"]) <= 4 for s in dump["series_data"])


class TestQueryEdgeCases:
    """Edges the live query endpoint leans on: empty windows, windows
    that straddle the raw-ring / downsample-bin boundary, and selectors
    over labels containing quotes, backslashes, and commas."""

    def test_quantile_over_time_empty_window_is_none(self):
        store = TimeSeriesStore(TimeSeriesConfig(scrape_interval_min=0.1))
        for i in range(5):
            store.record("lat", {}, float(i), 10.0 * i)
        # window [99, 100] holds no samples
        [(series, value)] = store.query(
            "quantile_over_time(0.95, lat[1m])", at=100.0
        )
        assert series.name == "lat"
        assert value is None
        # ...while a covering window answers
        [(_, value)] = store.query("quantile_over_time(0.5, lat[10m])", at=4.0)
        assert value == 20.0

    def test_empty_window_other_range_functions_are_none(self):
        store = TimeSeriesStore(TimeSeriesConfig(scrape_interval_min=0.1))
        store.record("m", {}, 0.0, 1.0)
        for expr in ("rate(m[1m])", "avg_over_time(m[1m])",
                     "max_over_time(m[1m])"):
            [(_, value)] = store.query(expr, at=50.0)
            assert value is None, expr

    def test_rate_across_downsample_stitch(self):
        # Tiny ring: 16 raw samples, bins of 4, two stacked levels.  A
        # 200-sample monotonic counter evicts most of the raw ring, so a
        # long window must stitch level-1 + level-0 bins + the raw tail.
        store = TimeSeriesStore(
            TimeSeriesConfig(
                scrape_interval_min=0.1,
                raw_capacity=16,
                downsample_factor=4,
                downsample_levels=2,
                level_capacity=64,
            )
        )
        for i in range(200):
            store.record("ctr", {}, float(i), 2.0 * i)  # slope 2/min
        series = store.get("ctr", {})
        assert not series.raw_covers(10.0)  # the window predates the ring
        [(_, value)] = store.query("rate(ctr[180m])", at=199.0)
        # bin fallback: (max of last bin - min of first bin) / span ≈ slope
        assert value == pytest.approx(2.0, rel=0.05)
        # a recent window still answered from raw samples stays exact
        [(_, recent)] = store.query("rate(ctr[5m])", at=199.0)
        assert recent == pytest.approx(2.0, rel=1e-9)

    def test_selector_on_escaped_label_values(self):
        store = TimeSeriesStore(TimeSeriesConfig(scrape_interval_min=0.1))
        tricky = 'he said "hi", path=C:\\tmp'
        store.record("m", {"note": tricky}, 1.0, 7.0)
        store.record("m", {"note": "plain"}, 1.0, 8.0)
        escaped = tricky.replace("\\", "\\\\").replace('"', '\\"')
        selector = parse_selector(f'm{{note="{escaped}"}}')
        assert selector.matchers[0].value == tricky
        [(series, value)] = store.query(f'm{{note="{escaped}"}}', at=1.0)
        assert series.labels["note"] == tricky
        assert value == 7.0

    def test_selector_with_comma_inside_value(self):
        store = TimeSeriesStore(TimeSeriesConfig(scrape_interval_min=0.1))
        store.record("m", {"svc": "a,b", "tier": "db"}, 1.0, 3.0)
        [(series, value)] = store.query('m{svc="a,b",tier="db"}', at=1.0)
        assert series.labels == {"svc": "a,b", "tier": "db"}
        assert value == 3.0

    def test_negative_matcher_with_escapes(self):
        store = TimeSeriesStore(TimeSeriesConfig(scrape_interval_min=0.1))
        store.record("m", {"k": 'x"y'}, 1.0, 1.0)
        store.record("m", {"k": "z"}, 1.0, 2.0)
        [(series, value)] = store.query('m{k!="x\\"y"}', at=1.0)
        assert series.labels["k"] == "z"
        assert value == 2.0
