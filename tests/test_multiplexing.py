"""Tests for repro.core.multiplexing: sharing, priorities, Theorem 1."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ServiceSpec,
    SharedScenario,
    assign_priorities,
    modified_workloads,
    resource_usage_fcfs_sharing,
    resource_usage_non_sharing,
    resource_usage_priority_bound,
    scale_with_priorities,
    shared_microservices,
)
from repro.graphs import DependencyGraph, call

from tests.helpers import make_profile


def fig5_services(gamma1=40_000.0, gamma2=40_000.0, sla1=300.0, sla2=300.0):
    """The Fig. 5 scenario: svc1 = U->P, svc2 = H->P, P shared.

    U is markedly more workload-sensitive than H, the condition under which
    priority scheduling pays off (Theorem 1 proof).
    """
    svc1 = ServiceSpec(
        "svc1",
        DependencyGraph("svc1", call("U", stages=[[call("P")]])),
        workload=gamma1,
        sla=sla1,
    )
    svc2 = ServiceSpec(
        "svc2",
        DependencyGraph("svc2", call("H", stages=[[call("P")]])),
        workload=gamma2,
        sla=sla2,
    )
    profiles = {
        "U": make_profile("U", slope=4.0, intercept=5.0),
        "H": make_profile("H", slope=0.8, intercept=5.0),
        "P": make_profile("P", slope=1.0, intercept=2.0),
    }
    return [svc1, svc2], profiles


class TestSharedMicroservices:
    def test_detects_shared(self):
        specs, _ = fig5_services()
        shared = shared_microservices(specs)
        assert shared == {"P": ["svc1", "svc2"]}

    def test_no_sharing(self):
        specs = [
            ServiceSpec("a", DependencyGraph("a", call("A")), 1.0, 10.0),
            ServiceSpec("b", DependencyGraph("b", call("B")), 1.0, 10.0),
        ]
        assert shared_microservices(specs) == {}

    def test_three_way_sharing(self):
        specs = [
            ServiceSpec(n, DependencyGraph(n, call("X")), 1.0, 10.0)
            for n in ("a", "b", "c")
        ]
        assert shared_microservices(specs) == {"X": ["a", "b", "c"]}


class TestPriorities:
    def test_lower_target_gets_higher_priority(self):
        specs, profiles = fig5_services()
        allocation = scale_with_priorities(specs, profiles)
        # svc1 contains the sensitive U, so its target at P is lower ->
        # svc1 rank 0 (scheduled first).
        assert allocation.priorities["P"]["svc1"] == 0
        assert allocation.priorities["P"]["svc2"] == 1

    def test_initial_targets_drive_ranking(self):
        initial_stub = {
            "a": type("T", (), {"targets": {"X": 5.0}})(),
            "b": type("T", (), {"targets": {"X": 2.0}})(),
            "c": type("T", (), {"targets": {"X": 9.0}})(),
        }
        ranks = assign_priorities(initial_stub, {"X": ["a", "b", "c"]})
        assert ranks["X"] == {"b": 0, "a": 1, "c": 2}

    def test_tie_breaks_by_name(self):
        initial_stub = {
            "b": type("T", (), {"targets": {"X": 5.0}})(),
            "a": type("T", (), {"targets": {"X": 5.0}})(),
        }
        ranks = assign_priorities(initial_stub, {"X": ["b", "a"]})
        assert ranks["X"] == {"a": 0, "b": 1}


class TestModifiedWorkloads:
    def test_low_priority_sees_summed_workload(self):
        specs, profiles = fig5_services(gamma1=10_000.0, gamma2=5_000.0)
        allocation = scale_with_priorities(specs, profiles)
        # svc1 is high priority: sees only its own workload at P.
        assert allocation.overrides["svc1"]["P"] == pytest.approx(10_000.0)
        # svc2 is low priority: sees gamma1 + gamma2.
        assert allocation.overrides["svc2"]["P"] == pytest.approx(15_000.0)

    def test_three_services_cascade(self):
        specs = [
            ServiceSpec(
                name,
                DependencyGraph(name, call(sens, stages=[[call("P")]])),
                workload=load,
                sla=300.0,
            )
            for name, sens, load in [
                ("hot", "U", 1000.0),
                ("warm", "H", 2000.0),
                ("cool", "K", 3000.0),
            ]
        ]
        profiles = {
            "U": make_profile("U", 8.0, 5.0),
            "H": make_profile("H", 2.0, 5.0),
            "K": make_profile("K", 0.5, 5.0),
            "P": make_profile("P", 1.0, 2.0),
        }
        priorities = {"P": {"hot": 0, "warm": 1, "cool": 2}}
        overrides = modified_workloads(specs, priorities)
        assert overrides["hot"]["P"] == pytest.approx(1000.0)
        assert overrides["warm"]["P"] == pytest.approx(3000.0)
        assert overrides["cool"]["P"] == pytest.approx(6000.0)


class TestScaleWithPriorities:
    def test_shared_container_count_is_max_over_services(self):
        specs, profiles = fig5_services()
        allocation = scale_with_priorities(specs, profiles)
        per_service = [
            allocation.final[s].containers.get("P", 0) for s in ("svc1", "svc2")
        ]
        assert allocation.containers()["P"] == max(per_service)

    def test_no_sharing_skips_phase_two(self):
        specs = [
            ServiceSpec(
                "a", DependencyGraph("a", call("A", stages=[[call("B")]])), 100.0, 50.0
            ),
        ]
        profiles = {
            "A": make_profile("A", 1.0, 1.0),
            "B": make_profile("B", 1.0, 1.0),
        }
        allocation = scale_with_priorities(specs, profiles)
        assert allocation.priorities == {}
        assert allocation.final["a"] is allocation.initial["a"]

    def test_priority_beats_fcfs_min_target_scaling(self):
        """The motivating §2.3 result: priority needs fewer resources."""
        specs, profiles = fig5_services()
        allocation = scale_with_priorities(specs, profiles)
        priority_total = sum(allocation.containers().values())

        # FCFS: shared microservice scaled for combined workload at the
        # minimum of the independently computed targets.
        from repro.core import ErmsScaler

        fcfs_total = sum(
            ErmsScaler(use_priority=False).scale(specs, profiles).containers.values()
        )
        assert priority_total < fcfs_total


def scenario_strategy():
    positive = st.floats(min_value=0.1, max_value=10.0)
    loads = st.floats(min_value=100.0, max_value=100_000.0)
    return st.builds(
        lambda a_h, ratio, a_p, r_u, r_h, r_p, g1, g2, budget: SharedScenario(
            # Theorem 1's scenario requires U more sensitive than H in the
            # a*R product (the priority assignment's premise).
            a_u=(a_h * r_h / r_u) * ratio,
            a_h=a_h,
            a_p=a_p,
            r_u=r_u,
            r_h=r_h,
            r_p=r_p,
            gamma1=g1,
            gamma2=g2,
            budget=budget,
        ),
        a_h=positive,
        ratio=st.floats(min_value=1.0, max_value=20.0),
        a_p=positive,
        r_u=positive,
        r_h=positive,
        r_p=positive,
        g1=loads,
        g2=loads,
        budget=st.floats(min_value=1.0, max_value=500.0),
    )


class TestTheorem1:
    def test_paper_like_numbers(self):
        scenario = SharedScenario(
            a_u=4.0, a_h=0.8, a_p=1.0,
            r_u=1.0, r_h=1.0, r_p=1.0,
            gamma1=40_000.0, gamma2=40_000.0, budget=293.0,
        )
        ru_s = resource_usage_fcfs_sharing(scenario)
        ru_n = resource_usage_non_sharing(scenario)
        ru_o = resource_usage_priority_bound(scenario)
        assert ru_o <= ru_n <= ru_s

    @given(scenario_strategy())
    @settings(max_examples=300)
    def test_ordering_holds(self, scenario):
        """Theorem 1: RU^o <= RU^n <= RU^s whenever a_u R_u >= a_h R_h."""
        ru_s = resource_usage_fcfs_sharing(scenario)
        ru_n = resource_usage_non_sharing(scenario)
        ru_o = resource_usage_priority_bound(scenario)
        tolerance = 1e-9 * max(ru_s, 1.0)
        assert ru_n <= ru_s + tolerance
        assert ru_o <= ru_n + tolerance

    def test_equality_when_symmetric(self):
        """RU^n == RU^s iff a_u R_u == a_h R_h (Cauchy-Schwarz tightness)."""
        scenario = SharedScenario(
            a_u=2.0, a_h=2.0, a_p=1.0,
            r_u=1.0, r_h=1.0, r_p=1.0,
            gamma1=1000.0, gamma2=2000.0, budget=100.0,
        )
        assert resource_usage_non_sharing(scenario) == pytest.approx(
            resource_usage_fcfs_sharing(scenario)
        )

    def test_invalid_scenario_rejected(self):
        with pytest.raises(ValueError):
            SharedScenario(
                a_u=-1.0, a_h=1.0, a_p=1.0, r_u=1.0, r_h=1.0, r_p=1.0,
                gamma1=1.0, gamma2=1.0, budget=1.0,
            )
        with pytest.raises(ValueError, match="budget"):
            SharedScenario(
                a_u=1.0, a_h=1.0, a_p=1.0, r_u=1.0, r_h=1.0, r_p=1.0,
                gamma1=1.0, gamma2=1.0, budget=0.0,
            )
