"""Perf benchmark suite tests.

The smoke tests (default tier-1) check that the runner produces a
well-formed ``BENCH_des.json`` and that the checked-in report records the
engine speedup.  The micro-timing guard actually times the engine and is
``perf``-marked — excluded from the default run (``-m "not perf"`` in
``pyproject.toml``), opt in with ``pytest -m perf``.
"""

import json
import pathlib
import sys

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "benchmarks" / "perf"))

import runner  # noqa: E402  (benchmarks/perf/runner.py)


class TestRunnerSmoke:
    def test_writes_well_formed_report(self, tmp_path):
        out = tmp_path / "BENCH_des.json"
        report = runner.run_suite(only=["trace_slice"], output=out)
        assert out.exists()
        on_disk = json.loads(out.read_text())
        assert on_disk == report
        assert on_disk["schema"] == 1
        slice_report = on_disk["benchmarks"]["trace_slice"]
        assert slice_report["wall_s"] > 0
        assert slice_report["services"] == 40
        assert slice_report["total_containers"] > 0
        # The checked-in seed baseline rides along in every report.
        baseline = on_disk["baseline"]["benchmarks"]["saturation"]
        assert baseline["events_per_sec"] > 0

    def test_checked_in_report_records_speedup(self):
        """The committed BENCH_des.json carries both engines' numbers."""
        report = json.loads((REPO_ROOT / "BENCH_des.json").read_text())
        current = report["benchmarks"]["saturation"]["events_per_sec"]
        baseline = report["baseline"]["benchmarks"]["saturation"][
            "events_per_sec"
        ]
        assert current > 0 and baseline > 0
        assert report["saturation_speedup_vs_seed"] >= 3.0

    def test_checked_in_report_records_tail_sampling(self):
        """Tail-based sampling numbers ride along with telemetry_overhead.

        Reads the committed report (no timing here): the tail run must
        keep only a small fraction of traces and cost less than full
        retention on the same scenario.
        """
        report = json.loads((REPO_ROOT / "BENCH_des.json").read_text())
        tail = report["benchmarks"]["tail_sampling"]
        assert tail["tail_threshold_ms"] > 0
        assert tail["keep_fraction"] <= 0.15
        assert tail["traces_kept"] < tail["traces_sampled"]
        assert tail["tail_overhead_pct"] < tail["full_overhead_pct"]
        analysis = report["benchmarks"]["analysis_throughput"]
        assert analysis["traces"] > 0
        assert analysis["critical_path_traces_per_sec"] > 0

    def test_checked_in_report_resilience_disabled_path(self):
        """The disabled-resilience hot path costs nothing measurable.

        Both figures in the committed report come from the same suite
        run on the same host, so the tolerance can be tight: with no
        chaos schedule or policy bundle attached, the resilience layer
        is one ``is not None`` branch per arrival/fan-out, and its
        events/sec must sit within 5 % of the plain saturation number.
        """
        report = json.loads((REPO_ROOT / "BENCH_des.json").read_text())
        resilience = report["benchmarks"]["resilience_overhead"]
        saturation = report["benchmarks"]["saturation"]["events_per_sec"]
        assert resilience["disabled_events_per_sec"] >= 0.95 * saturation
        assert resilience["enabled_events_per_sec"] > 0
        # The enabled run must actually exercise the policy machinery:
        # a fault-free "enabled" measurement would understate the cost.
        assert (
            resilience["enabled_retries"] + resilience["enabled_chaos_errors"]
            > 0
        )

    def test_checked_in_report_tsdb_disabled_path(self):
        """The scrape-off hot path costs nothing measurable.

        With no telemetry sink attached there is no TSDB anywhere near
        the engine, so the disabled figure must sit within 5 % of the
        plain saturation number from the same suite run — the tentpole's
        "disabled path stays free" acceptance gate.  The enabled figure
        must come from a run that actually scraped.
        """
        report = json.loads((REPO_ROOT / "BENCH_des.json").read_text())
        tsdb = report["benchmarks"]["tsdb_overhead"]
        saturation = report["benchmarks"]["saturation"]["events_per_sec"]
        assert tsdb["disabled_events_per_sec"] >= 0.95 * saturation
        assert tsdb["enabled_events_per_sec"] > 0
        assert tsdb["scrapes"] > 0
        assert tsdb["samples"] > tsdb["scrapes"]

    def test_checked_in_report_serve_disabled_path(self):
        """The no-server hot path costs nothing measurable.

        A run that never passes ``--serve`` constructs no HTTP server,
        no threads, no source adapter — so the disabled figure must sit
        within 5 % of the plain saturation number from the same suite
        run (the tentpole's acceptance gate).  The enabled figure must
        come from a run that actually served scrapes concurrently.
        """
        report = json.loads((REPO_ROOT / "BENCH_des.json").read_text())
        serve = report["benchmarks"]["serve_overhead"]
        saturation = report["benchmarks"]["saturation"]["events_per_sec"]
        assert serve["disabled_events_per_sec"] >= 0.95 * saturation
        assert serve["enabled_events_per_sec"] > 0
        assert serve["requests_served"] > 0


@pytest.mark.perf
class TestMicroTimingGuard:
    def test_saturation_throughput_floor(self):
        """Gross engine regressions fail loudly.

        The fast-path engine does ~650k events/sec on a 1-CPU container
        (seed engine: ~214k); the floor is generous so slow shared CI
        machines don't flake, while a return to closure-per-event
        allocation (or worse) still trips it.
        """
        report = runner.bench_saturation(duration_min=1.0, trials=3)
        assert report["events_per_sec"] >= 150_000
        assert report["requests"] > 0

    def test_telemetry_disabled_within_20pct_of_tracked(self):
        """The disabled-telemetry hot path must not regress.

        The telemetry hooks add one ``is None`` branch per hot loop; this
        guard re-times the saturation scenario against the checked-in
        ``BENCH_des.json`` figure.  The tolerance matches the 20 %
        threshold of ``benchmarks/perf/compare.py``: on a shared VM the
        same deterministic workload swings well beyond 5 % between host
        phases, while the regression class this guards against
        (closure-per-event allocation) costs 3x.  Best-of-5 damps the
        phase noise further.
        """
        tracked = json.loads((REPO_ROOT / "BENCH_des.json").read_text())
        pinned = tracked["benchmarks"]["saturation"]["events_per_sec"]
        report = runner.bench_saturation(duration_min=1.0, trials=5)
        assert report["events_per_sec"] >= 0.80 * pinned

    def test_telemetry_overhead_is_bounded(self):
        """Fully-enabled telemetry slows the engine, but boundedly.

        Span emission at 100 % sampling allocates two spans per call, so
        ~3x slowdown is the expected worst case (tracked ~66 %); the
        guard trips on a runaway per-event cost, not the known price.
        """
        report = runner.bench_telemetry_overhead(duration_min=0.5, trials=2)
        assert report["disabled_events_per_sec"] > 0
        assert report["enabled_events_per_sec"] >= 100_000
        assert report["overhead_pct"] < 80.0

    def test_resilience_overhead_is_bounded(self):
        """The full policy stack slows the engine, but boundedly.

        Every logical RPC becomes a resilient-call record plus a timeout
        event, and saturation-induced timeouts add retry load, so ~2x
        slowdown is the expected worst case (tracked ~44 %); the guard
        trips on a runaway per-call cost, not the known price.
        """
        report = runner.bench_resilience_overhead(duration_min=0.5, trials=2)
        assert report["disabled_events_per_sec"] > 0
        assert report["enabled_events_per_sec"] >= 100_000
        assert report["overhead_pct"] < 80.0

    def test_tsdb_overhead_is_bounded(self):
        """Aggressive scraping slows the engine, but boundedly.

        The enabled side runs a full sink (windows, registry, monitor)
        plus a 0.05-minute scrape cadence with rules — the window ticks
        dominate, as in ``telemetry_overhead``; the guard trips on a
        runaway per-scrape or per-sample cost, not the known price.
        """
        report = runner.bench_tsdb_overhead(duration_min=0.5, trials=2)
        assert report["disabled_events_per_sec"] > 0
        assert report["enabled_events_per_sec"] >= 100_000
        assert report["overhead_pct"] < 80.0
        assert report["scrapes"] >= 5

    def test_serve_overhead_is_bounded(self):
        """Being polled over HTTP slows the engine, but boundedly.

        The sink + TSDB cost dominates (same as ``tsdb_overhead``); the
        GIL handoffs to the server's handler threads add a few percent
        on top.  The guard trips on a runaway per-request cost — e.g. a
        handler copying the whole store per scrape — not the known
        price, and the client must actually have been served.
        """
        report = runner.bench_serve_overhead(duration_min=0.5, trials=2)
        assert report["disabled_events_per_sec"] > 0
        assert report["enabled_events_per_sec"] >= 100_000
        assert report["overhead_pct"] < 80.0
        assert report["requests_served"] > 0
