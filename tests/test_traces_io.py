"""Tests for the Alibaba-v2021-style trace row format."""

import pytest

from repro.workloads.traces_io import (
    CallRow,
    graph_to_rows,
    graphs_from_csv,
    read_csv,
    rows_to_graph,
    write_csv,
)

from tests.helpers import chain_graph, fig1_graph


class TestGraphToRows:
    def test_root_row_convention(self):
        rows = graph_to_rows(fig1_graph(), traceid="t1")
        root = rows[0]
        assert root.rpcid == "0"
        assert root.um == "USER"
        assert root.dm == "T"

    def test_one_row_per_call(self):
        rows = graph_to_rows(fig1_graph())
        # Root entry + 3 downstream calls.
        assert len(rows) == 4

    def test_parallel_flags(self):
        rows = graph_to_rows(fig1_graph())
        by_dm = {row.dm: row for row in rows}
        assert not by_dm["Url"].parallel  # first of its stage
        assert by_dm["U"].parallel  # joins Url's stage
        assert not by_dm["C"].parallel  # new stage

    def test_rpcid_hierarchy(self):
        rows = graph_to_rows(chain_graph(["A", "B", "C"]))
        rpcids = sorted(row.rpcid for row in rows)
        assert rpcids == ["0", "0.1", "0.1.1"]

    def test_depth_and_parent(self):
        row = CallRow("t", "svc", "0.1.2", "a", "b", 1.0)
        assert row.depth() == 2
        assert row.parent_rpcid() == "0.1"
        assert CallRow("t", "svc", "0", "USER", "a", 1.0).parent_rpcid() is None


class TestRowsToGraph:
    def test_round_trip_fig1(self):
        graph = fig1_graph()
        rebuilt = rows_to_graph(graph_to_rows(graph))
        assert set(rebuilt.critical_paths()) == set(graph.critical_paths())
        assert rebuilt.service == graph.service

    def test_round_trip_chain(self):
        graph = chain_graph(["A", "B", "C", "D"])
        rebuilt = rows_to_graph(graph_to_rows(graph))
        assert rebuilt.critical_paths() == graph.critical_paths()

    def test_rows_order_independent(self):
        rows = graph_to_rows(fig1_graph())
        rebuilt = rows_to_graph(list(reversed(rows)))
        assert set(rebuilt.critical_paths()) == set(fig1_graph().critical_paths())

    def test_missing_parent_rejected(self):
        rows = [
            CallRow("t", "svc", "0", "USER", "A", 1.0),
            CallRow("t", "svc", "0.1.1", "B", "C", 1.0),
        ]
        with pytest.raises(ValueError, match="no parent"):
            rows_to_graph(rows)

    def test_um_mismatch_rejected(self):
        rows = [
            CallRow("t", "svc", "0", "USER", "A", 1.0),
            CallRow("t", "svc", "0.1", "WRONG", "B", 1.0),
        ]
        with pytest.raises(ValueError, match="does not match"):
            rows_to_graph(rows)

    def test_multiple_traces_rejected(self):
        rows = [
            CallRow("t1", "svc", "0", "USER", "A", 1.0),
            CallRow("t2", "svc", "0", "USER", "A", 1.0),
        ]
        with pytest.raises(ValueError, match="multiple traces"):
            rows_to_graph(rows)

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            rows_to_graph([])


class TestCsvRoundTrip:
    def test_write_and_read(self, tmp_path):
        rows = graph_to_rows(fig1_graph(), traceid="t9")
        path = tmp_path / "calls.csv"
        assert write_csv(rows, str(path)) == len(rows)
        loaded = read_csv(str(path))
        assert loaded == rows

    def test_graphs_from_csv_many_traces(self, tmp_path):
        rows = graph_to_rows(fig1_graph(), traceid="a") + graph_to_rows(
            chain_graph(["A", "B"]), traceid="b"
        )
        path = tmp_path / "calls.csv"
        write_csv(rows, str(path))
        graphs = graphs_from_csv(str(path))
        assert set(graphs) == {"a", "b"}
        assert set(graphs["a"].critical_paths()) == set(
            fig1_graph().critical_paths()
        )

    def test_round_trip_through_clustering(self, tmp_path):
        """Trace rows -> graphs -> classes: the §9 pipeline on disk data."""
        from repro.graphs.clustering import cluster_graphs

        rows = []
        for index in range(4):
            graph = fig1_graph() if index % 2 == 0 else chain_graph(["X", "Y"])
            rows.extend(graph_to_rows(graph, traceid=f"t{index}"))
        path = tmp_path / "calls.csv"
        write_csv(rows, str(path))
        graphs = list(graphs_from_csv(str(path)).values())
        classes = cluster_graphs(graphs, similarity_threshold=0.5)
        assert len(classes) == 2
