"""Tests for the trace analytics engine (`repro.telemetry.analysis`).

The load-bearing contracts:

* critical-path decomposition is *exact*: per trace, the segment own
  latencies sum to the engine's end-to-end latency, and each timed
  segment's queue + service time equals its own latency (property-tested
  over seeded runs);
* SLA blame agrees with constructed ground truth — the deliberately
  under-provisioned microservice ranks first, and an injected priority
  inversion at a shared microservice is flagged;
* the profile-drift detector fires on a mid-run interference shift, stays
  silent on a stationary run, and routes alerts through the existing
  SLAMonitor / DecisionLog machinery;
* tail-based sampling at a P95 threshold keeps a small fraction of
  traces but retains 100 % of SLA-violating ones, without perturbing the
  engine's pinned output streams.
"""

import json

import numpy as np
import pytest

from repro.core.model import ServiceSpec
from repro.experiments import fit_profiles_from_simulation
from repro.experiments.reporting import render_analysis_sections
from repro.graphs import DependencyGraph, call
from repro.simulator import (
    ClusterSimulator,
    SimulatedMicroservice,
    SimulationConfig,
)
from repro.telemetry import (
    DecisionLog,
    SLAMonitor,
    TelemetryConfig,
    TelemetrySink,
    build_run_report,
)
from repro.telemetry.analysis import (
    AnalysisOptions,
    DriftThresholds,
    analyze_run,
    attribute_blame,
    critical_path_summary,
    detect_profile_drift,
    extract_critical_path,
    refit_profile,
)


def shared_simulator(telemetry=None, seed=42, duration=0.5):
    """Shared-fanout scenario (same shape as the pinned golden run)."""
    s1 = ServiceSpec(
        "s1",
        DependencyGraph("s1", call("F", stages=[[call("P"), call("Q")]])),
        0.0,
        300.0,
    )
    s2 = ServiceSpec(
        "s2", DependencyGraph("s2", call("G", stages=[[call("P")]])), 0.0, 300.0
    )
    return ClusterSimulator(
        [s1, s2],
        {
            "F": SimulatedMicroservice("F", 4.0, 2),
            "G": SimulatedMicroservice("G", 6.0, 2),
            "P": SimulatedMicroservice("P", 3.0, 4),
            "Q": SimulatedMicroservice("Q", 5.0, 2),
        },
        containers={"F": 2, "G": 2, "P": 2, "Q": 2},
        rates={"s1": 9_000.0, "s2": 6_000.0},
        config=SimulationConfig(
            duration_min=duration, warmup_min=0.1, seed=seed
        ),
        telemetry=telemetry,
    )


# ----------------------------------------------------------------------
# Critical-path decomposition: exactness properties
# ----------------------------------------------------------------------
class TestCriticalPathExactness:
    @pytest.mark.parametrize("seed", [0, 7, 42])
    def test_own_latencies_sum_to_e2e(self, seed):
        """Property: segments telescope exactly to the engine e2e."""
        sink = TelemetrySink(config=TelemetryConfig())
        shared_simulator(telemetry=sink, seed=seed).run()
        assert sink.traces
        for trace in sink.traces:
            path = extract_critical_path(trace)
            assert path.total_own_ms == pytest.approx(
                path.end_to_end_ms, abs=1e-6
            )

    def test_queue_plus_service_equals_own(self):
        """Every timed segment splits exactly: queue + service == own."""
        sink = TelemetrySink(config=TelemetryConfig())
        shared_simulator(telemetry=sink).run()
        timed = 0
        for trace in sink.traces:
            for segment in extract_critical_path(trace).segments:
                if segment.queue_ms is not None:
                    timed += 1
                    assert segment.queue_ms + segment.service_ms == (
                        pytest.approx(segment.own_ms, abs=1e-9)
                    )
                    assert segment.queue_ms >= 0.0
                    assert segment.inflation_ms == 0.0  # no colocation here
        assert timed > 0

    def test_interference_inflation_share(self):
        """With a 2x multiplier, inflation is half of each service time."""
        spec = ServiceSpec("svc", DependencyGraph("svc", call("B")), 0.0, 1e9)
        sink = TelemetrySink(config=TelemetryConfig())
        ClusterSimulator(
            [spec],
            {"B": SimulatedMicroservice("B", base_service_ms=5.0, threads=4)},
            containers={"B": 2},
            rates={"svc": 6_000.0},
            config=SimulationConfig(duration_min=0.5, warmup_min=0.0, seed=3),
            container_multipliers={"B": [2.0, 2.0]},
            telemetry=sink,
        ).run()
        checked = 0
        for trace in sink.traces:
            for segment in extract_critical_path(trace).segments:
                if segment.service_ms:
                    checked += 1
                    assert segment.inflation_ms == pytest.approx(
                        segment.service_ms / 2.0, abs=1e-9
                    )
        assert checked > 0

    def test_posthoc_traces_decompose_without_timings(self):
        """Synthesized traces (no engine timings) still sum exactly."""
        from repro.tracing import synthesize_trace

        spec = ServiceSpec(
            "svc",
            DependencyGraph(
                "svc", call("A", stages=[[call("B"), call("C")], [call("D")]])
            ),
            0.0,
            100.0,
        )
        trace = synthesize_trace(
            spec.graph,
            {"A": 4.0, "B": 2.0, "C": 6.0, "D": 3.0},
            trace_id="t0",
        )
        path = extract_critical_path(trace)
        assert path.total_own_ms == pytest.approx(path.end_to_end_ms, abs=1e-6)
        assert all(s.queue_ms is None for s in path.segments)

    def test_summary_shares_sum_to_one(self):
        sink = TelemetrySink(config=TelemetryConfig())
        shared_simulator(telemetry=sink).run()
        paths = [extract_critical_path(t) for t in sink.traces]
        rows = critical_path_summary(paths)
        assert rows[0]["total_own_ms"] == max(r["total_own_ms"] for r in rows)
        assert sum(r["share_pct"] for r in rows) == pytest.approx(100.0, abs=0.1)


# ----------------------------------------------------------------------
# SLA blame attribution: constructed ground truth
# ----------------------------------------------------------------------
def run_underprovisioned(seed=11):
    """F is generous (4 containers), P is starved (1 container near
    saturation) — P is the ground-truth blame target."""
    spec = ServiceSpec(
        "s1", DependencyGraph("s1", call("F", stages=[[call("P")]])), 0.0, 30.0
    )
    sink = TelemetrySink(config=TelemetryConfig())
    ClusterSimulator(
        [spec],
        {
            "F": SimulatedMicroservice("F", 2.0, 4),
            "P": SimulatedMicroservice("P", 4.0, 2),
        },
        containers={"F": 4, "P": 1},
        rates={"s1": 28_000.0},  # P capacity: 2/4ms = 30k req/min
        config=SimulationConfig(duration_min=1.0, warmup_min=0.0, seed=seed),
        telemetry=sink,
    ).run()
    return sink


class TestBlameAttribution:
    TARGETS = {"s1": {"F": 10.0, "P": 8.0}}
    SLAS = {"s1": 30.0}

    def test_underprovisioned_microservice_ranked_first(self):
        sink = run_underprovisioned()
        report = attribute_blame(sink.traces, self.TARGETS, self.SLAS)
        assert report.violating_windows  # the run does violate
        top = report.top_offender("s1")
        assert top is not None and top.microservice == "P"
        assert top.excess_ms > 0
        # The generously provisioned microservice is exonerated.
        f_entries = [e for e in report.entries if e.microservice == "F"]
        assert all(e.excess_ms < top.excess_ms for e in f_entries)

    def test_healthy_run_has_no_violating_windows(self):
        sink = TelemetrySink(config=TelemetryConfig())
        shared_simulator(telemetry=sink).run()
        report = attribute_blame(
            sink.traces,
            targets={"s1": {"F": 50.0, "P": 50.0, "Q": 50.0}},
            slas={"s1": 1e9, "s2": 1e9},
        )
        assert report.violating_windows == []
        assert report.entries == []
        assert report.top_offender() is None

    def test_entries_sorted_by_excess(self):
        sink = run_underprovisioned()
        report = attribute_blame(sink.traces, self.TARGETS, self.SLAS)
        excesses = [e.excess_ms for e in report.entries]
        assert excesses == sorted(excesses, reverse=True)

    def test_report_round_trips_to_json(self):
        sink = run_underprovisioned()
        report = attribute_blame(sink.traces, self.TARGETS, self.SLAS)
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["entries"][0]["microservice"] == "P"

    def test_priority_inversion_flagged(self):
        """Scheduler favors s2 at shared P while the intended order says
        s1 first: s1 blows its P target, s2 meets its own -> inversion."""
        s1 = ServiceSpec(
            "s1", DependencyGraph("s1", call("F", stages=[[call("P")]])),
            0.0, 25.0,
        )
        s2 = ServiceSpec(
            "s2", DependencyGraph("s2", call("G", stages=[[call("P")]])),
            0.0, 10_000.0,
        )
        sink = TelemetrySink(config=TelemetryConfig())
        ClusterSimulator(
            [s1, s2],
            {
                "F": SimulatedMicroservice("F", 2.0, 4),
                "G": SimulatedMicroservice("G", 2.0, 4),
                "P": SimulatedMicroservice("P", 4.0, 2),
            },
            containers={"F": 2, "G": 2, "P": 1},
            rates={"s1": 15_000.0, "s2": 14_000.0},  # P at ~97 % load
            config=SimulationConfig(
                duration_min=1.0, warmup_min=0.0, seed=5, scheduling="priority"
            ),
            # The deployed order is INVERTED: s2 is served first.
            priorities={"P": {"s2": 0, "s1": 1}},
            telemetry=sink,
        ).run()
        report = attribute_blame(
            sink.traces,
            targets={
                "s1": {"F": 10.0, "P": 25.0},
                "s2": {"G": 10.0, "P": 25.0},
            },
            slas={"s1": 25.0, "s2": 10_000.0},
            # ... while the allocation's intended order puts s1 first.
            priorities={"P": {"s1": 0, "s2": 1}},
        )
        assert report.inversions
        inversion = report.inversions[0]
        assert inversion.microservice == "P"
        assert inversion.victim == "s1" and inversion.offender == "s2"
        assert inversion.victim_excess_ms > 0
        assert inversion.offender_headroom_ms >= 0

    def test_no_inversion_when_priorities_hold(self):
        """Same saturated setup but the deployed order matches the
        intended one: s1 is served first and meets its target."""
        s1 = ServiceSpec(
            "s1", DependencyGraph("s1", call("F", stages=[[call("P")]])),
            0.0, 25.0,
        )
        s2 = ServiceSpec(
            "s2", DependencyGraph("s2", call("G", stages=[[call("P")]])),
            0.0, 10_000.0,
        )
        sink = TelemetrySink(config=TelemetryConfig())
        ClusterSimulator(
            [s1, s2],
            {
                "F": SimulatedMicroservice("F", 2.0, 4),
                "G": SimulatedMicroservice("G", 2.0, 4),
                "P": SimulatedMicroservice("P", 4.0, 2),
            },
            containers={"F": 2, "G": 2, "P": 1},
            rates={"s1": 15_000.0, "s2": 14_000.0},
            config=SimulationConfig(
                duration_min=1.0, warmup_min=0.0, seed=5, scheduling="priority"
            ),
            priorities={"P": {"s1": 0, "s2": 1}},
            telemetry=sink,
        ).run()
        report = attribute_blame(
            sink.traces,
            targets={
                "s1": {"F": 10.0, "P": 25.0},
                "s2": {"G": 10.0, "P": 25.0},
            },
            slas={"s1": 25.0, "s2": 10_000.0},
            priorities={"P": {"s1": 0, "s2": 1}},
        )
        assert report.inversions == []


# ----------------------------------------------------------------------
# Profile drift detection
# ----------------------------------------------------------------------
def offline_profile_b():
    simulated = {"B": SimulatedMicroservice("B", base_service_ms=5.0, threads=4)}
    profiles = fit_profiles_from_simulation(
        simulated, sweep_points=8, duration_min=1.0, seed=0
    )
    return simulated, {name: p.model for name, p in profiles.items()}


def live_run_b(simulated, multiplier=None, seed=9):
    """Six instrumented minutes of B at moderate load (spans off: the
    drift detector consumes only the windowed MetricsStore)."""
    spec = ServiceSpec("svc", DependencyGraph("svc", call("B")), 0.0, 1e9)
    sink = TelemetrySink(config=TelemetryConfig(spans=False))
    ClusterSimulator(
        [spec],
        simulated,
        containers={"B": 1},
        rates={"svc": 24_000.0},  # half of capacity (4/5ms = 48k req/min),
        # safely inside the offline fit's low-load segment
        config=SimulationConfig(duration_min=6.0, warmup_min=0.5, seed=seed),
        container_multipliers=(
            {"B": [multiplier]} if multiplier is not None else None
        ),
        telemetry=sink,
    ).run()
    return sink


class TestProfileDrift:
    def test_silent_on_stationary_run(self):
        simulated, models = offline_profile_b()
        sink = live_run_b(simulated)
        reports = detect_profile_drift(sink.metrics, models)
        assert len(reports) == 1
        assert not reports[0].drifted
        assert reports[0].n_windows >= 4

    def test_fires_on_interference_shift(self):
        """Halfway through, colocation doubles B's service time; the
        offline profile's predictions no longer match the live windows."""
        simulated, models = offline_profile_b()
        sink = live_run_b(
            simulated,
            multiplier=lambda minute: 1.0 if minute < 2.5 else 2.0,
        )
        reports = detect_profile_drift(sink.metrics, models)
        assert reports[0].drifted
        assert reports[0].median_rel_error > DriftThresholds().prediction_rel

    def test_alerts_flow_through_monitor_and_decision_log(self):
        simulated, models = offline_profile_b()
        sink = live_run_b(
            simulated,
            multiplier=lambda minute: 1.0 if minute < 2.5 else 2.0,
        )
        monitor = SLAMonitor()
        decisions = DecisionLog()
        detect_profile_drift(
            sink.metrics, models, monitor=monitor, decisions=decisions
        )
        assert len(monitor.alerts) == 1
        alert = monitor.alerts[0]
        assert alert.service == "profile-drift:B"
        assert alert.p95_ms > alert.sla_ms  # observed >> predicted
        assert len(decisions) == 1
        record = decisions.records[0]
        assert record.actor == "drift-detector"
        assert record.microservice == "B"
        assert record.delta == 0  # advisory: drift never scales by itself
        assert "drift" in record.reason

    def test_insufficient_windows_is_not_drift(self):
        simulated, models = offline_profile_b()
        spec = ServiceSpec("svc", DependencyGraph("svc", call("B")), 0.0, 1e9)
        sink = TelemetrySink(config=TelemetryConfig(spans=False))
        ClusterSimulator(
            [spec],
            simulated,
            containers={"B": 1},
            rates={"svc": 30_000.0},
            config=SimulationConfig(duration_min=2.0, warmup_min=0.0, seed=1),
            telemetry=sink,
        ).run()
        reports = detect_profile_drift(sink.metrics, models)
        assert not reports[0].drifted
        assert "insufficient windows" in reports[0].reason

    def test_refit_recovers_piecewise_shape(self):
        simulated, models = offline_profile_b()
        sink = live_run_b(simulated)
        windows = sink.metrics.profiling_windows("B")
        fit = refit_profile(windows)
        # Live windows sit at one load level, so only prediction agreement
        # is meaningful: the refit must predict those windows well.
        loads = np.array([w.per_container_load for w in windows])
        tails = np.array([w.tail_latency for w in windows])
        assert np.median(np.abs(fit.predict(loads) - tails)) < 0.5 * np.median(tails)


# ----------------------------------------------------------------------
# Tail-based sampling
# ----------------------------------------------------------------------
class TestTailSampling:
    def run_with_threshold(self, threshold, floor=0.01, seed=42):
        sink = TelemetrySink(
            config=TelemetryConfig(
                tail_threshold_ms=threshold, tail_floor=floor
            )
        )
        result = shared_simulator(telemetry=sink, seed=seed).run()
        return sink, result

    def baseline_p95(self, seed=42):
        result = shared_simulator(seed=seed).run()
        samples = np.concatenate(
            [
                result.latencies(name, include_warmup=True)
                for name in ("s1", "s2")
            ]
        )
        return float(np.percentile(samples, 95.0)), samples

    def test_p95_threshold_keeps_small_fraction(self):
        threshold, _ = self.baseline_p95()
        sink, _ = self.run_with_threshold(threshold)
        assert sink.sampled_traces > 0
        keep_fraction = sink.kept_traces / sink.sampled_traces
        # ~5 % above P95 plus the 1 % uniform floor, far from 100 %.
        assert keep_fraction <= 0.10
        assert sink.kept_traces + sink.tail_dropped == sink.sampled_traces
        assert len(sink.traces) == sink.kept_traces

    def test_all_violating_traces_retained(self):
        """With the threshold at the SLA, every violating request's full
        trace survives sampling."""
        threshold, samples = self.baseline_p95()
        sink, _ = self.run_with_threshold(threshold, floor=0.0)
        n_violating = int(np.count_nonzero(samples > threshold))
        kept_violating = sum(
            1
            for trace in sink.traces
            if trace.end_to_end_latency() > threshold
        )
        assert n_violating > 0
        assert kept_violating == n_violating
        # floor=0: *only* violating traces are kept.
        assert len(sink.traces) == n_violating

    def test_monitor_sees_every_request_regardless_of_sampling(self):
        threshold, _ = self.baseline_p95()
        sink, result = self.run_with_threshold(threshold)
        monitored = sum(w.count for w in sink.monitor.windows)
        completed = sum(result.completed.values())
        assert monitored == completed

    def test_tail_sampling_does_not_perturb_engine(self):
        """Pinned contract: the engine's output streams are byte-identical
        with tail sampling on and off."""
        plain = shared_simulator(seed=42).run()
        sink, sampled = self.run_with_threshold(50.0)
        for name in ("s1", "s2"):
            assert np.array_equal(
                plain.latencies(name, include_warmup=True),
                sampled.latencies(name, include_warmup=True),
            )
        assert plain.events_processed == sampled.events_processed

    def test_floor_keeps_healthy_baseline(self):
        sink, _ = self.run_with_threshold(10_000.0, floor=0.05)
        # Nothing exceeds 10 s, so retention is the floor alone.
        keep_fraction = sink.kept_traces / sink.sampled_traces
        assert 0.02 <= keep_fraction <= 0.10

    def test_config_validation(self):
        with pytest.raises(ValueError, match="tail_threshold_ms"):
            TelemetryConfig(tail_threshold_ms=0.0)
        with pytest.raises(ValueError, match="tail_floor"):
            TelemetryConfig(tail_floor=1.5)


# ----------------------------------------------------------------------
# analyze_run: the one-call pipeline
# ----------------------------------------------------------------------
class TestAnalyzeRun:
    def test_sink_defaults_and_json_round_trip(self):
        sink = run_underprovisioned()
        analysis = analyze_run(
            sink=sink,
            targets={"s1": {"F": 10.0, "P": 8.0}},
            options=AnalysisOptions(top_paths=3),
        )
        assert analysis.n_traces == len(sink.traces)
        assert analysis.decomposition_max_abs_error_ms < 1e-6
        assert len(analysis.slowest) == 3
        assert analysis.blame is not None
        assert analysis.blame.top_offender("s1").microservice == "P"
        assert analysis.sampling["kept_traces"] == sink.kept_traces
        payload = json.loads(json.dumps(analysis.to_dict()))
        assert payload["critical_path"]
        # P dominates the critical path of the saturated run.
        assert payload["critical_path"][0]["microservice"] == "P"

    def test_render_and_report_embedding(self):
        sink = run_underprovisioned()
        result_stub = shared_simulator(seed=2).run()
        analysis = analyze_run(
            sink=sink, targets={"s1": {"F": 10.0, "P": 8.0}}
        )
        sections = render_analysis_sections(analysis.to_dict())
        text = "\n\n".join(sections)
        assert "Critical-path attribution" in text
        assert "SLA blame" in text
        assert "Sampling:" in text
        report = build_run_report(sink, result_stub, analysis=analysis)
        assert report["analysis"]["n_traces"] == analysis.n_traces
        json.dumps(report)  # the full report stays JSON-ready

    def test_empty_traces_analyze_cleanly(self):
        analysis = analyze_run(traces=[])
        assert analysis.n_traces == 0
        assert analysis.critical_path == []
        assert analysis.blame is None
        json.dumps(analysis.to_dict())
