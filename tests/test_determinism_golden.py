"""Golden-seed determinism: the engine's exact output streams are pinned.

The fast-path engine batches RNG draws and recycles event records, so its
draw *order* differs from the pre-fast-path engine — but for a fixed seed
it must stay byte-identical to itself across runs, Python processes, and
future refactors.  These tests pin that contract two ways:

* checked-in SHA-256 fingerprints over the generated/completed counts and
  the raw latency sample streams of two canonical configurations (a
  change here means the engine's sampled behaviour changed — bump the
  fingerprints only with a deliberate engine revision);
* ``workers=N`` process-parallel sweeps must equal ``workers=1`` serial
  sweeps row-for-row (the parallel runner's determinism contract).
"""

import hashlib

import numpy as np

from repro.core import ErmsScaler
from repro.core.model import ServiceSpec
from repro.experiments import (
    run_delta_sweep,
    run_static_sweep,
    simulate_profiling_sweep,
)
from repro.graphs import DependencyGraph, call
from repro.simulator import (
    ClusterSimulator,
    SimulatedMicroservice,
    SimulationConfig,
)
from repro.workloads import social_network

#: Engine-version fingerprints (fast-path engine, PR 1).
GOLDEN_SINGLE = "270cd4d9c5a49698191c13bfdf2b0fd0c8821c9f62ba0cf1dda9033bd25105f0"
GOLDEN_SHARED = "289d7cd272aa2a967404f9c8554b894fd3943d8af93f5b4e761fdcb52f2344c4"


def fingerprint(result, services, microservices):
    """SHA-256 over counts plus raw latency sample streams (bytes)."""
    digest = hashlib.sha256()
    for name in services:
        digest.update(
            f"{name}:{result.generated[name]}:{result.completed[name]};".encode()
        )
        digest.update(result.latencies(name, include_warmup=True).tobytes())
    for name in microservices:
        pair = result._own.get(name)
        if pair is not None:
            digest.update(np.frombuffer(pair[1], dtype=np.float64).tobytes())
    return digest.hexdigest()


def run_single():
    spec = ServiceSpec("svc", DependencyGraph("svc", call("B")), 0.0, 100.0)
    return ClusterSimulator(
        [spec],
        {"B": SimulatedMicroservice("B", base_service_ms=5.0, threads=4)},
        containers={"B": 1},
        rates={"svc": 20_000.0},
        config=SimulationConfig(duration_min=0.5, warmup_min=0.1, seed=123),
    ).run()


def run_shared():
    s1 = ServiceSpec(
        "s1",
        DependencyGraph("s1", call("F", stages=[[call("P"), call("Q")]])),
        0.0,
        300.0,
    )
    s2 = ServiceSpec(
        "s2", DependencyGraph("s2", call("G", stages=[[call("P")]])), 0.0, 300.0
    )
    return ClusterSimulator(
        [s1, s2],
        {
            "F": SimulatedMicroservice("F", 4.0, 2),
            "G": SimulatedMicroservice("G", 6.0, 2),
            "P": SimulatedMicroservice("P", 3.0, 4),
            "Q": SimulatedMicroservice("Q", 5.0, 2),
        },
        containers={"F": 2, "G": 2, "P": 2, "Q": 2},
        rates={"s1": 9_000.0, "s2": 6_000.0},
        config=SimulationConfig(duration_min=0.5, warmup_min=0.1, seed=42),
    ).run()


class TestGoldenFingerprints:
    def test_single_microservice_stream_pinned(self):
        result = run_single()
        assert fingerprint(result, ["svc"], ["B"]) == GOLDEN_SINGLE

    def test_shared_fanout_stream_pinned(self):
        result = run_shared()
        assert fingerprint(result, ["s1", "s2"], ["F", "G", "P", "Q"]) == (
            GOLDEN_SHARED
        )

    def test_rerun_is_byte_identical(self):
        first, second = run_shared(), run_shared()
        for name in ("s1", "s2"):
            assert np.array_equal(
                first.latencies(name, include_warmup=True),
                second.latencies(name, include_warmup=True),
            )
        assert first.generated == second.generated
        assert first.completed == second.completed


class TestChaosDeterminism:
    """Chaos + policies ride dedicated RNG streams: runs stay pinned."""

    def run_chaotic(self):
        from repro.resilience import (
            ChaosSchedule,
            CrashEvent,
            ErrorWindow,
            LatencySpike,
            ResiliencePolicies,
        )

        s1 = ServiceSpec(
            "s1",
            DependencyGraph("s1", call("F", stages=[[call("P"), call("Q")]])),
            0.0,
            300.0,
        )
        s2 = ServiceSpec(
            "s2", DependencyGraph("s2", call("G", stages=[[call("P")]])), 0.0, 300.0
        )
        chaos = ChaosSchedule(
            crashes=[CrashEvent(0.2, "P", restart_after_ms=4_000.0)],
            error_windows=[ErrorWindow("Q", 0.15, 0.35, 0.3)],
            latency_spikes=[LatencySpike("F", 0.1, 0.3, 2.5)],
            seed=7,
        )
        return ClusterSimulator(
            [s1, s2],
            {
                "F": SimulatedMicroservice("F", 4.0, 2),
                "G": SimulatedMicroservice("G", 6.0, 2),
                "P": SimulatedMicroservice("P", 3.0, 4),
                "Q": SimulatedMicroservice("Q", 5.0, 2),
            },
            containers={"F": 2, "G": 2, "P": 2, "Q": 2},
            rates={"s1": 9_000.0, "s2": 6_000.0},
            config=SimulationConfig(duration_min=0.5, warmup_min=0.1, seed=42),
            chaos=chaos,
            resilience=ResiliencePolicies.default(seed=1),
        ).run()

    def test_chaotic_rerun_is_byte_identical(self):
        first, second = self.run_chaotic(), self.run_chaotic()
        assert fingerprint(
            first, ["s1", "s2"], ["F", "G", "P", "Q"]
        ) == fingerprint(second, ["s1", "s2"], ["F", "G", "P", "Q"])
        assert first.failed_requests == second.failed_requests
        assert first.shed_requests == second.shed_requests
        assert first.resilience == second.resilience

    def test_disabled_resilience_keeps_golden_fingerprints(self):
        """Without chaos/resilience args the engine path — and thus the
        pinned fingerprints above — is untouched (the hard correctness
        bar of the resilience layer)."""
        result = run_shared()
        assert result.resilience is None
        assert fingerprint(result, ["s1", "s2"], ["F", "G", "P", "Q"]) == (
            GOLDEN_SHARED
        )


class TestTimeSeriesNeutrality:
    """The embedded TSDB only *reads* engine state on scrape ticks — an
    attached store must not shift a single RNG draw or event, so the
    pinned golden fingerprints hold bit-for-bit with scraping enabled."""

    def run_shared_with_tsdb(self):
        from repro.telemetry import (
            TelemetryConfig,
            TelemetrySink,
            TimeSeriesConfig,
            TimeSeriesStore,
        )

        store = TimeSeriesStore(TimeSeriesConfig(scrape_interval_min=0.1))
        sink = TelemetrySink(
            config=TelemetryConfig(window_min=0.25, spans=False, max_traces=0),
            timeseries=store,
        )
        s1 = ServiceSpec(
            "s1",
            DependencyGraph("s1", call("F", stages=[[call("P"), call("Q")]])),
            0.0,
            300.0,
        )
        s2 = ServiceSpec(
            "s2", DependencyGraph("s2", call("G", stages=[[call("P")]])), 0.0, 300.0
        )
        result = ClusterSimulator(
            [s1, s2],
            {
                "F": SimulatedMicroservice("F", 4.0, 2),
                "G": SimulatedMicroservice("G", 6.0, 2),
                "P": SimulatedMicroservice("P", 3.0, 4),
                "Q": SimulatedMicroservice("Q", 5.0, 2),
            },
            containers={"F": 2, "G": 2, "P": 2, "Q": 2},
            rates={"s1": 9_000.0, "s2": 6_000.0},
            config=SimulationConfig(duration_min=0.5, warmup_min=0.1, seed=42),
            telemetry=sink,
        ).run()
        return store, result

    def test_tsdb_scraping_keeps_golden_fingerprint(self):
        store, result = self.run_shared_with_tsdb()
        assert store.scrapes > 0 and store.total_samples > 0
        assert fingerprint(result, ["s1", "s2"], ["F", "G", "P", "Q"]) == (
            GOLDEN_SHARED
        )


class TestParallelEqualsSerial:
    def test_static_sweep_rows_identical(self):
        app = social_network()
        grid = dict(
            workloads=[5_000.0, 20_000.0],
            slas=[200.0],
            simulate=True,
            duration_min=0.4,
            warmup_min=0.1,
            seed=0,
        )
        serial = run_static_sweep(app, [ErmsScaler()], workers=1, **grid)
        parallel = run_static_sweep(app, [ErmsScaler()], workers=2, **grid)
        assert len(serial.rows) == 2
        assert serial.rows == parallel.rows

    def test_profiling_sweep_identical(self):
        microservice = SimulatedMicroservice("B", base_service_ms=5.0, threads=2)
        loads = [10_000.0, 16_000.0, 22_000.0]
        _, serial = simulate_profiling_sweep(
            microservice, loads, duration_min=0.4, warmup_min=0.1, workers=1
        )
        _, parallel = simulate_profiling_sweep(
            microservice, loads, duration_min=0.4, warmup_min=0.1, workers=3
        )
        assert np.array_equal(serial, parallel)

    def test_delta_sweep_identical(self):
        serial = run_delta_sweep(duration_min=0.4, warmup_min=0.1, workers=1)
        parallel = run_delta_sweep(duration_min=0.4, warmup_min=0.1, workers=2)
        assert serial == parallel
        assert [row["delta"] for row in serial] == [0.0, 0.05, 0.2]

    def test_trace_sim_prefilter_identical(self):
        from repro.experiments import run_trace_simulation
        from repro.workloads import generate_taobao

        workload = generate_taobao(n_services=8, seed=1)
        # Fresh scheme instances per run: schemes are stateful.
        serial = run_trace_simulation(workload, [ErmsScaler()], workers=1)
        parallel = run_trace_simulation(workload, [ErmsScaler()], workers=2)
        assert serial.totals == parallel.totals
        assert serial.per_service == parallel.per_service
        assert serial.skipped_services == parallel.skipped_services
