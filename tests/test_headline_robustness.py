"""Seed-robustness of the headline reproduction results.

The benchmarks pin seeds; these tests re-check the two analytic headline
claims across several seeds so a lucky seed cannot carry the repo:

* Fig. 16: Erms reduces Taobao-scale containers vs GrandSLAm by >=1.2x,
  with both modules (LTC, priority) contributing;
* Theorem 1 ordering on fresh random scenarios.
"""

import numpy as np
import pytest

from repro.baselines import GrandSLAm
from repro.core import (
    ErmsScaler,
    SharedScenario,
    resource_usage_fcfs_sharing,
    resource_usage_non_sharing,
    resource_usage_priority_bound,
)
from repro.experiments import run_trace_simulation
from repro.workloads import generate_taobao


class TestTraceScaleRobustness:
    @pytest.mark.parametrize("seed", [7, 99, 2024])
    def test_erms_reduction_holds_across_seeds(self, seed):
        workload = generate_taobao(n_services=30, seed=seed)
        result = run_trace_simulation(
            workload,
            [ErmsScaler(), ErmsScaler(use_priority=False), GrandSLAm()],
        )
        assert result.reduction_factor("erms", "grandslam") >= 1.2
        assert result.reduction_factor("erms-fcfs", "grandslam") >= 1.0
        assert result.reduction_factor("erms", "erms-fcfs") >= 1.0


class TestTheoremRobustness:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_ordering_on_fresh_scenarios(self, seed):
        rng = np.random.default_rng(seed)
        for _ in range(100):
            a_h = rng.uniform(0.1, 5.0)
            r_u, r_h, r_p = rng.uniform(0.1, 5.0, size=3)
            scenario = SharedScenario(
                a_u=a_h * r_h / r_u * rng.uniform(1.0, 10.0),
                a_h=a_h,
                a_p=rng.uniform(0.1, 5.0),
                r_u=r_u,
                r_h=r_h,
                r_p=r_p,
                gamma1=rng.uniform(1_000.0, 100_000.0),
                gamma2=rng.uniform(1_000.0, 100_000.0),
                budget=rng.uniform(10.0, 400.0),
            )
            ru_s = resource_usage_fcfs_sharing(scenario)
            ru_n = resource_usage_non_sharing(scenario)
            ru_o = resource_usage_priority_bound(scenario)
            tolerance = 1e-9 * ru_s
            assert ru_o <= ru_n + tolerance
            assert ru_n <= ru_s + tolerance
