"""Tests for the from-scratch GBRT and MLP profiling baselines."""

import numpy as np
import pytest

from repro.profiling import (
    GradientBoostedTrees,
    MLPRegressor,
    SyntheticMicroservice,
    accuracy_score,
    generate_synthetic_day,
)


def regression_problem(n=400, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.uniform(0, 1, size=(n, 3))
    y = 3.0 * x[:, 0] + np.sin(4 * x[:, 1]) + 0.5 * x[:, 2] ** 2 + 2.0
    return x, y


class TestGradientBoostedTrees:
    def test_fits_nonlinear_function(self):
        x, y = regression_problem()
        model = GradientBoostedTrees(n_estimators=150, max_depth=3).fit(x, y)
        predictions = model.predict(x)
        assert accuracy_score(y, predictions) > 0.95

    def test_generalizes(self):
        x, y = regression_problem(n=600)
        x_test, y_test = regression_problem(n=200, seed=9)
        model = GradientBoostedTrees(n_estimators=150).fit(x, y)
        assert accuracy_score(y_test, model.predict(x_test)) > 0.9

    def test_more_rounds_reduce_train_error(self):
        x, y = regression_problem()
        small = GradientBoostedTrees(n_estimators=5).fit(x, y)
        large = GradientBoostedTrees(n_estimators=100).fit(x, y)
        err_small = float(np.mean((small.predict(x) - y) ** 2))
        err_large = float(np.mean((large.predict(x) - y) ** 2))
        assert err_large < err_small

    def test_predict_before_fit_rejected(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            GradientBoostedTrees().predict(np.zeros((1, 3)))

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            GradientBoostedTrees(n_estimators=0)
        with pytest.raises(ValueError):
            GradientBoostedTrees(learning_rate=0.0)

    def test_profiles_synthetic_microservice(self):
        data = generate_synthetic_day(SyntheticMicroservice(), noise=0.03, seed=5)
        train, test = data.split(22 / 24)
        model = GradientBoostedTrees(n_estimators=120).fit(
            train.features(), train.latencies
        )
        predictions = model.predict(test.features())
        assert accuracy_score(test.latencies, predictions) > 0.7


class TestMLPRegressor:
    def test_fits_linear_function(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(-1, 1, size=(500, 2))
        y = 2.0 * x[:, 0] - x[:, 1] + 3.0
        model = MLPRegressor(epochs=100, seed=0).fit(x, y)
        predictions = model.predict(x)
        rmse = float(np.sqrt(np.mean((predictions - y) ** 2)))
        assert rmse < 0.2

    def test_fits_nonlinear_function(self):
        x, y = regression_problem()
        model = MLPRegressor(epochs=300, seed=1).fit(x, y)
        assert accuracy_score(y, model.predict(x)) > 0.9

    def test_deterministic_given_seed(self):
        x, y = regression_problem(n=100)
        a = MLPRegressor(epochs=20, seed=7).fit(x, y).predict(x)
        b = MLPRegressor(epochs=20, seed=7).fit(x, y).predict(x)
        assert np.allclose(a, b)

    def test_predict_before_fit_rejected(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            MLPRegressor().predict(np.zeros((1, 2)))

    def test_invalid_hidden(self):
        with pytest.raises(ValueError, match="hidden"):
            MLPRegressor(hidden=0)

    def test_degrades_with_few_samples(self):
        """The Fig. 10b effect: the NN needs data; tiny sets hurt it."""
        data = generate_synthetic_day(SyntheticMicroservice(), noise=0.03, seed=6)
        train, test = data.split(22 / 24)
        tiny = train.subsample(0.05, seed=0)
        full_model = MLPRegressor(epochs=150, seed=2).fit(
            train.features(), train.latencies
        )
        tiny_model = MLPRegressor(epochs=150, seed=2).fit(
            tiny.features(), tiny.latencies
        )
        full_acc = accuracy_score(test.latencies, full_model.predict(test.features()))
        tiny_acc = accuracy_score(test.latencies, tiny_model.predict(test.features()))
        assert tiny_acc < full_acc
