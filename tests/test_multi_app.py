"""Cross-application integration: several apps managed as one cluster."""

import pytest

from repro.core import Cluster, ErmsScaler
from repro.core.controller import ErmsController
from repro.core.multiplexing import shared_microservices
from repro.workloads import hotel_reservation, media_service, social_network


class TestMultiApplicationScaling:
    def test_apps_have_disjoint_microservices(self):
        """Namespaces don't collide, so apps can be co-managed."""
        apps = [social_network(), media_service(), hotel_reservation()]
        seen = set()
        for app in apps:
            names = set(app.microservices())
            assert not (seen & names)
            seen |= names

    def test_scale_all_apps_together(self):
        apps = [social_network(), media_service(), hotel_reservation()]
        specs = []
        profiles = {}
        for app in apps:
            specs.extend(
                app.with_workloads({s.name: 8_000.0 for s in app.services})
            )
            profiles.update(app.analytic_profiles())
        allocation = ErmsScaler().scale(specs, profiles)
        assert set(allocation.containers) == set(profiles)
        # Sharing stays within each app.
        shared = shared_microservices(specs)
        for name in shared:
            owners = {
                app.name for app in apps if name in app.microservices()
            }
            assert len(owners) == 1

    def test_controller_manages_all_apps_on_one_cluster(self):
        apps = [social_network(), hotel_reservation()]
        specs = []
        sources = {}
        for app in apps:
            specs.extend(app.services)
            sources.update(app.analytic_profiles())
        controller = ErmsController(
            specs=specs,
            cluster=Cluster.homogeneous(10),
            profile_source=sources,
            startup_seconds=1.0,
        )
        report = controller.reconcile(
            {spec.name: 6_000.0 for spec in specs}
        )
        assert report.total_containers() == controller.total_pods()
        controller.tick(1.5)
        assert sum(controller.serving_containers().values()) == controller.total_pods()
