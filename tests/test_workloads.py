"""Tests for repro.workloads: arrival processes, DSB apps, Alibaba gen."""

import numpy as np
import pytest

from repro.core import compute_service_targets, scale_with_priorities
from repro.graphs import validate_graph
from repro.workloads import (
    DiurnalRate,
    StaticRate,
    SteppedRate,
    TraceRate,
    generate_taobao,
    hotel_reservation,
    media_service,
    sharing_counts,
    social_network,
)


class TestArrivalProcesses:
    def test_static_rate(self):
        rate = StaticRate(5000.0)
        assert rate(0.0) == 5000.0
        assert rate(100.0) == 5000.0

    def test_static_negative_rejected(self):
        with pytest.raises(ValueError, match="rate"):
            StaticRate(-1.0)

    def test_stepped_rate(self):
        rate = SteppedRate(((0.0, 100.0), (10.0, 500.0), (20.0, 50.0)))
        assert rate(5.0) == 100.0
        assert rate(10.0) == 500.0
        assert rate(25.0) == 50.0

    def test_stepped_requires_sorted_steps(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            SteppedRate(((10.0, 1.0), (0.0, 2.0)))

    def test_stepped_empty_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            SteppedRate(())

    def test_diurnal_rate_oscillates(self):
        rate = DiurnalRate(base=1000.0, amplitude=0.5, period_min=1440.0, seed=1)
        trough = rate(0.0)  # phase puts the trough at t=0
        peak = rate(720.0)
        assert peak > 1.5 * trough
        assert all(rate(m) >= 0.0 for m in range(0, 1440, 60))

    def test_diurnal_deterministic(self):
        a = DiurnalRate(base=1000.0, seed=3)
        b = DiurnalRate(base=1000.0, seed=3)
        assert a(123.0) == b(123.0)

    def test_diurnal_validation(self):
        with pytest.raises(ValueError, match="base"):
            DiurnalRate(base=0.0)
        with pytest.raises(ValueError, match="amplitude"):
            DiurnalRate(base=1.0, amplitude=2.0)

    def test_trace_rate_replays_and_clamps(self):
        rate = TraceRate.from_samples([10.0, 20.0, 30.0])
        assert rate(0.5) == 10.0
        assert rate(1.0) == 20.0
        assert rate(99.0) == 30.0  # held at the last sample

    def test_trace_rate_validation(self):
        with pytest.raises(ValueError, match="non-empty"):
            TraceRate(())
        with pytest.raises(ValueError, match="non-negative"):
            TraceRate((1.0, -2.0))


class TestDeathStarBench:
    def test_paper_microservice_counts(self):
        """Paper §6.1: 36, 38, and 15 unique microservices."""
        assert len(social_network().microservices()) == 36
        assert len(media_service().microservices()) == 38
        assert len(hotel_reservation().microservices()) == 15

    def test_paper_service_counts(self):
        """Paper §6.1: 3, 1, and 4 services."""
        assert len(social_network().services) == 3
        assert len(media_service().services) == 1
        assert len(hotel_reservation().services) == 4

    def test_paper_shared_counts(self):
        """Paper §6.1: Social Network and Hotel have 3 shared microservices."""
        assert len(social_network().shared_stateless()) == 3
        assert len(hotel_reservation().shared_stateless()) == 3
        assert media_service().shared_microservices() == []

    def test_graphs_are_valid(self):
        for app in (social_network(), media_service(), hotel_reservation()):
            for spec in app.services:
                validate_graph(spec.graph)

    def test_every_microservice_has_simulation_params(self):
        for app in (social_network(), media_service(), hotel_reservation()):
            assert set(app.simulated) == set(app.microservices())

    def test_analytic_profiles_cover_all(self):
        app = social_network()
        profiles = app.analytic_profiles()
        assert set(profiles) == set(app.microservices())
        for profile in profiles.values():
            assert profile.model.low.slope > 0
            assert profile.model.high.slope > profile.model.low.slope

    def test_interference_scales_profiles(self):
        app = hotel_reservation()
        calm = app.analytic_profiles(1.0)
        busy = app.analytic_profiles(2.0)
        name = "search-service"
        assert busy[name].model.high.slope > calm[name].model.high.slope
        assert busy[name].model.cutoff < calm[name].model.cutoff

    def test_invalid_interference_rejected(self):
        with pytest.raises(ValueError, match="interference_multiplier"):
            social_network().analytic_profiles(0.5)

    def test_with_workloads(self):
        app = hotel_reservation()
        specs = app.with_workloads({"search-hotel": 1234.0}, sla=99.0)
        by_name = {s.name: s for s in specs}
        assert by_name["search-hotel"].workload == 1234.0
        assert by_name["login-hotel"].sla == 99.0

    def test_social_network_scales_end_to_end(self):
        """The whole app flows through the Erms core without errors."""
        app = social_network()
        profiles = app.analytic_profiles()
        specs = app.with_workloads(
            {s.name: 5000.0 for s in app.services}, sla=250.0
        )
        allocation = scale_with_priorities(specs, profiles)
        assert set(allocation.priorities)  # shared microservices got ranks
        containers = allocation.containers()
        assert set(containers) == set(app.microservices())

    def test_user_timeline_more_sensitive_than_post_storage(self):
        """The Fig. 4 premise holds in our ground truth."""
        profiles = social_network().analytic_profiles()
        ut = profiles["user-timeline-service"].model.high
        ps = profiles["post-storage-service"].model.high
        assert ut.slope > ps.slope


class TestAlibabaGenerators:
    def test_sharing_cdf_matches_paper(self):
        """Fig. 2: ~40% of microservices shared by >100 of 1000 services."""
        counts = sharing_counts(seed=0)
        fraction = float(np.mean(counts > 100))
        assert 0.3 <= fraction <= 0.5

    def test_sharing_counts_all_positive(self):
        counts = sharing_counts(n_microservices=500, n_services=100, seed=1)
        assert counts.min() >= 1
        assert counts.max() <= 100

    def test_sharing_validation(self):
        with pytest.raises(ValueError):
            sharing_counts(n_microservices=0)
        with pytest.raises(ValueError, match="hot_fraction"):
            sharing_counts(hot_fraction=1.5)

    def test_taobao_scale_parameters(self):
        workload = generate_taobao(n_services=60, seed=2)
        assert len(workload.services) == 60
        sizes = [s.graph.node_count() for s in workload.services]
        assert 30 <= np.mean(sizes) <= 70  # ~50 microservices per service
        assert len(workload.shared_microservices()) > 50

    def test_taobao_graphs_valid_and_scalable(self):
        workload = generate_taobao(n_services=10, seed=3)
        for spec in workload.services:
            validate_graph(spec.graph)
            result = compute_service_targets(spec, workload.profiles)
            assert all(count >= 1 for count in result.containers.values())

    def test_taobao_profiles_cover_all_microservices(self):
        workload = generate_taobao(n_services=10, seed=4)
        for spec in workload.services:
            for name in spec.graph.microservices():
                assert name in workload.profiles

    def test_taobao_deterministic(self):
        a = generate_taobao(n_services=5, seed=7)
        b = generate_taobao(n_services=5, seed=7)
        assert [s.workload for s in a.services] == [s.workload for s in b.services]
        assert a.microservice_count() == b.microservice_count()

    def test_taobao_with_rates(self):
        workload = generate_taobao(n_services=3, seed=5, with_rates=True)
        assert set(workload.rates) == {s.name for s in workload.services}
        rate = workload.rates[workload.services[0].name]
        assert rate(0.0) >= 0.0

    def test_taobao_validation(self):
        with pytest.raises(ValueError):
            generate_taobao(n_services=0)
        with pytest.raises(ValueError):
            generate_taobao(mean_graph_size=1)
