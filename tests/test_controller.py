"""Integration tests for ErmsController: the Fig. 6 loop end to end."""

import pytest

from repro.core import Cluster, ErmsScaler
from repro.core.controller import ErmsController
from repro.deployment import PodPhase
from repro.workloads import hotel_reservation


@pytest.fixture()
def controller():
    app = hotel_reservation()
    cluster = Cluster.homogeneous(6)
    return (
        app,
        ErmsController(
            specs=app.services,
            cluster=cluster,
            profile_source=lambda cpu, mem: app.analytic_profiles(
                1.0 + cpu + mem
            ),
            startup_seconds=2.0,
        ),
    )


class TestErmsController:
    def test_first_period_deploys_everything(self, controller):
        app, ctl = controller
        report = ctl.reconcile(
            {spec.name: 4_000.0 for spec in app.services}
        )
        assert report.total_containers() == ctl.total_pods()
        assert set(ctl.api.deployments) == set(app.microservices())
        # Shared microservices got priority bands on their pods.
        assert report.traffic_classes_installed > 0

    def test_pods_serve_after_tick(self, controller):
        app, ctl = controller
        ctl.reconcile({spec.name: 4_000.0 for spec in app.services})
        assert sum(ctl.serving_containers().values()) == 0
        ctl.tick(2.5)
        assert sum(ctl.serving_containers().values()) == ctl.total_pods()

    def test_scale_up_on_workload_growth(self, controller):
        app, ctl = controller
        low = ctl.reconcile({spec.name: 2_000.0 for spec in app.services})
        ctl.tick(5.0)
        high = ctl.reconcile({spec.name: 40_000.0 for spec in app.services})
        assert high.total_containers() > low.total_containers()
        assert ctl.total_pods() == high.total_containers()

    def test_scale_down_releases_pods(self, controller):
        app, ctl = controller
        ctl.reconcile({spec.name: 40_000.0 for spec in app.services})
        ctl.tick(5.0)
        peak_pods = ctl.total_pods()
        ctl.reconcile({spec.name: 2_000.0 for spec in app.services})
        ctl.tick(0.0)
        assert ctl.total_pods() < peak_pods

    def test_interference_feeds_back_into_profiles(self, controller):
        """Busier clusters mean weaker profiles mean more containers."""
        app, ctl = controller
        calm = ctl.reconcile(
            {spec.name: 20_000.0 for spec in app.services},
            utilization=(0.0, 0.0),
        )
        busy = ctl.reconcile(
            {spec.name: 20_000.0 for spec in app.services},
            utilization=(0.4, 0.4),
        )
        assert busy.total_containers() > calm.total_containers()

    def test_static_profile_source_accepted(self):
        app = hotel_reservation()
        ctl = ErmsController(
            specs=app.services,
            cluster=Cluster.homogeneous(4),
            profile_source=app.analytic_profiles(),
        )
        report = ctl.reconcile({spec.name: 3_000.0 for spec in app.services})
        assert report.total_containers() > 0

    def test_history_accumulates(self, controller):
        app, ctl = controller
        for rate in (2_000.0, 4_000.0, 8_000.0):
            ctl.reconcile({spec.name: rate for spec in app.services})
            ctl.tick(3.0)
        assert len(ctl.history) == 3

    def test_cluster_and_api_stay_consistent(self, controller):
        """Pod counts on hosts always match the cluster bookkeeping."""
        app, ctl = controller
        for rate in (3_000.0, 30_000.0, 1_000.0, 15_000.0):
            ctl.reconcile({spec.name: rate for spec in app.services})
            ctl.tick(3.0)
        placement = ctl.cluster.placement()
        for name in ctl.api.deployments:
            assert placement.get(name, 0) == ctl.api.active_replicas(name)
