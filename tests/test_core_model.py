"""Tests for repro.core.model: latency segments, piecewise models, specs."""

import pytest

from repro.core import (
    Allocation,
    ContainerSpec,
    InfeasibleSLAError,
    LatencySegment,
    MicroserviceProfile,
    PiecewiseLatencyModel,
    ServiceSpec,
    containers_for_target,
)

from tests.helpers import fig1_graph, make_profile


class TestLatencySegment:
    def test_latency_is_affine(self):
        seg = LatencySegment(slope=2.0, intercept=3.0)
        assert seg.latency(0.0) == pytest.approx(3.0)
        assert seg.latency(10.0) == pytest.approx(23.0)

    def test_load_for_latency_inverts(self):
        seg = LatencySegment(slope=2.0, intercept=3.0)
        assert seg.load_for_latency(seg.latency(7.5)) == pytest.approx(7.5)

    def test_nonpositive_slope_rejected(self):
        with pytest.raises(ValueError, match="slope"):
            LatencySegment(slope=0.0, intercept=1.0)

    def test_negative_intercept_allowed(self):
        # The steep post-cutoff segment extrapolates below zero at low
        # loads; Eq. 5 stays well-defined for negative intercepts.
        seg = LatencySegment(slope=1.0, intercept=-5.0)
        assert seg.latency(10.0) == pytest.approx(5.0)


class TestPiecewiseLatencyModel:
    def _model(self):
        return PiecewiseLatencyModel(
            low=LatencySegment(0.5, 2.0),
            high=LatencySegment(2.0, 2.0),
            cutoff=10.0,
        )

    def test_low_segment_below_cutoff(self):
        model = self._model()
        assert model.latency(5.0) == pytest.approx(0.5 * 5 + 2)

    def test_high_segment_above_cutoff(self):
        model = self._model()
        assert model.latency(20.0) == pytest.approx(2.0 * 20 + 2)

    def test_latency_at_cutoff_uses_high_segment(self):
        model = self._model()
        assert model.latency_at_cutoff() == pytest.approx(2.0 * 10 + 2)

    def test_segment_for_target_picks_low_when_tight(self):
        model = self._model()
        assert model.segment_for_target(5.0) is model.low
        assert model.segment_for_target(50.0) is model.high

    def test_nonpositive_cutoff_rejected(self):
        with pytest.raises(ValueError, match="cutoff"):
            PiecewiseLatencyModel(
                low=LatencySegment(1.0, 0.0),
                high=LatencySegment(2.0, 0.0),
                cutoff=0.0,
            )


class TestContainerSpec:
    def test_dominant_share_picks_max(self):
        spec = ContainerSpec(cpu=0.1, memory_mb=200.0)
        # CPU share 0.1/32, memory share 200/64000 -> CPU dominates
        share = spec.dominant_share(32.0, 64_000.0)
        assert share == pytest.approx(0.1 / 32.0)

    def test_memory_dominates_for_heavy_memory(self):
        spec = ContainerSpec(cpu=0.1, memory_mb=8_000.0)
        share = spec.dominant_share(32.0, 64_000.0)
        assert share == pytest.approx(8_000.0 / 64_000.0)


class TestContainersForTarget:
    def test_exact_division(self):
        seg = LatencySegment(slope=1.0, intercept=0.0)
        # latency = workload / n <= 10 with workload 100 -> n >= 10
        assert containers_for_target(seg, 100.0, 10.0) == 10

    def test_rounds_up(self):
        seg = LatencySegment(slope=1.0, intercept=0.0)
        assert containers_for_target(seg, 101.0, 10.0) == 11

    def test_minimum_one_container(self):
        seg = LatencySegment(slope=1.0, intercept=0.0)
        assert containers_for_target(seg, 1.0, 1000.0) == 1

    def test_zero_workload(self):
        seg = LatencySegment(slope=1.0, intercept=0.0)
        assert containers_for_target(seg, 0.0, 1.0) == 1

    def test_target_below_intercept_infeasible(self):
        seg = LatencySegment(slope=1.0, intercept=5.0)
        with pytest.raises(InfeasibleSLAError):
            containers_for_target(seg, 10.0, 4.0)

    def test_result_meets_target(self):
        seg = LatencySegment(slope=1.7, intercept=2.3)
        workload, target = 12_345.0, 9.0
        n = containers_for_target(seg, workload, target)
        assert seg.latency(workload / n) <= target
        if n > 1:
            assert seg.latency(workload / (n - 1)) > target


class TestServiceSpec:
    def test_microservice_workloads(self):
        spec = ServiceSpec("svc", fig1_graph(), workload=600.0, sla=100.0)
        assert spec.microservice_workloads() == {
            "T": 600.0,
            "Url": 600.0,
            "U": 600.0,
            "C": 600.0,
        }

    def test_negative_workload_rejected(self):
        with pytest.raises(ValueError, match="workload"):
            ServiceSpec("svc", fig1_graph(), workload=-1.0, sla=100.0)

    def test_nonpositive_sla_rejected(self):
        with pytest.raises(ValueError, match="sla"):
            ServiceSpec("svc", fig1_graph(), workload=1.0, sla=0.0)


class TestAllocation:
    def test_totals(self):
        allocation = Allocation(containers={"A": 3, "B": 2})
        assert allocation.total_containers() == 5
        profiles = {
            "A": make_profile("A", 1.0, 1.0, resource=2.0),
            "B": make_profile("B", 1.0, 1.0, resource=0.5),
        }
        assert allocation.total_resource_usage(profiles) == pytest.approx(7.0)

    def test_profile_rejects_nonpositive_resource(self):
        with pytest.raises(ValueError, match="resource_demand"):
            MicroserviceProfile(
                name="A",
                model=PiecewiseLatencyModel(
                    low=LatencySegment(1.0, 0.0),
                    high=LatencySegment(2.0, 0.0),
                    cutoff=1.0,
                ),
                resource_demand=0.0,
            )
