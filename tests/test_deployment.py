"""Tests for repro.deployment: mock K8s API, reconciliation, tc bands."""

import pytest

from repro.core import (
    Allocation,
    Cluster,
    ContainerSpec,
    InterferenceAwareProvisioner,
)
from repro.deployment import (
    DeploymentController,
    MockKubeApi,
    NetworkPriorityConfigurator,
    PodPhase,
)


def make_controller(hosts=4, startup_seconds=3.0):
    api = MockKubeApi()
    cluster = Cluster.homogeneous(hosts)
    controller = DeploymentController(
        api=api,
        cluster=cluster,
        provisioner=InterferenceAwareProvisioner(),
        startup_seconds=startup_seconds,
    )
    return api, cluster, controller


class TestMockKubeApi:
    def test_apply_is_idempotent(self):
        api = MockKubeApi()
        api.apply("ms", 3)
        api.apply("ms", 5)
        assert api.deployments["ms"].replicas == 5
        assert len(api.events_of_kind("apply")) == 2

    def test_create_pod_requires_deployment(self):
        api = MockKubeApi()
        with pytest.raises(KeyError, match="no deployment"):
            api.create_pod("ghost")

    def test_delete_unknown_pod(self):
        api = MockKubeApi()
        with pytest.raises(KeyError, match="no pod"):
            api.delete_pod("nope")

    def test_negative_replicas_rejected(self):
        api = MockKubeApi()
        with pytest.raises(ValueError, match="replicas"):
            api.apply("ms", -1)

    def test_reap_removes_terminating(self):
        api = MockKubeApi()
        api.apply("ms", 1)
        pod = api.create_pod("ms")
        api.delete_pod(pod.name)
        assert api.reap_terminated() == 1
        assert pod.name not in api.pods


class TestDeploymentController:
    def test_scale_up_creates_and_schedules_pods(self):
        api, cluster, controller = make_controller()
        controller.apply_allocation({"ms": 6})
        deltas = controller.reconcile()
        assert deltas == {"ms": 6}
        assert api.active_replicas("ms") == 6
        assert all(pod.node is not None for pod in api.pods_of("ms"))
        assert cluster.placement() == {"ms": 6}

    def test_pods_start_after_delay(self):
        api, _, controller = make_controller(startup_seconds=5.0)
        controller.apply_allocation({"ms": 2})
        controller.reconcile()
        assert api.serving_replicas("ms") == 0
        assert controller.tick(4.0) == 0
        assert controller.tick(2.0) == 2
        assert api.serving_replicas("ms") == 2

    def test_scale_down_terminates_and_releases(self):
        api, cluster, controller = make_controller()
        controller.apply_allocation({"ms": 5})
        controller.reconcile()
        controller.tick(10.0)
        controller.apply_allocation({"ms": 2})
        controller.reconcile()
        assert api.active_replicas("ms") == 2
        controller.tick(0.0)  # reap
        assert cluster.placement() == {"ms": 2}

    def test_reconcile_is_idempotent(self):
        api, _, controller = make_controller()
        controller.apply_allocation({"ms": 3})
        controller.reconcile()
        assert controller.reconcile() == {}
        assert api.active_replicas("ms") == 3

    def test_interference_aware_placement(self):
        api, cluster, controller = make_controller(hosts=4)
        cluster.hosts[0].background_cpu = 28.0
        cluster.hosts[0].background_memory_mb = 56_000.0
        controller.apply_allocation({"ms": 6})
        controller.reconcile()
        assert len(api.pods_on_node("host-000")) == 0

    def test_multiple_microservices(self):
        api, cluster, controller = make_controller()
        controller.apply_allocation(
            {"a": 2, "b": 3},
            specs={"a": ContainerSpec(cpu=0.2), "b": ContainerSpec(cpu=0.1)},
        )
        controller.reconcile()
        assert api.active_replicas("a") == 2
        assert api.active_replicas("b") == 3

    def test_negative_tick_rejected(self):
        _, _, controller = make_controller()
        with pytest.raises(ValueError, match="non-negative"):
            controller.tick(-1.0)


class TestNetworkPriorityConfigurator:
    def _allocation(self):
        return Allocation(
            containers={"P": 2},
            priorities={"P": {"svc-hot": 0, "svc-warm": 1, "svc-cold": 2}},
        )

    def test_plan_maps_ranks_to_bands(self):
        configurator = NetworkPriorityConfigurator(bands=3)
        plan = configurator.plan(self._allocation())
        assert plan["P"] == {"svc-hot": 0, "svc-warm": 1, "svc-cold": 2}

    def test_ranks_clamped_to_band_count(self):
        configurator = NetworkPriorityConfigurator(bands=2)
        plan = configurator.plan(self._allocation())
        assert plan["P"]["svc-cold"] == 1  # shares the lowest band

    def test_install_tags_every_pod(self):
        api, _, controller = make_controller()
        controller.apply_allocation({"P": 2})
        controller.reconcile()
        configurator = NetworkPriorityConfigurator()
        count = configurator.install(api, self._allocation())
        assert count == 2 * 3  # 2 pods x 3 services
        assert api.pods_of("P")[0].traffic_bands["svc-hot"] == 0

    def test_bands_for_consistency_check(self):
        api, _, controller = make_controller()
        controller.apply_allocation({"P": 2})
        controller.reconcile()
        configurator = NetworkPriorityConfigurator()
        configurator.install(api, self._allocation())
        assert configurator.bands_for(api, "P")["svc-cold"] == 2
        # Corrupt one pod; the check must catch it.
        api.pods_of("P")[0].traffic_bands["svc-cold"] = 0
        with pytest.raises(RuntimeError, match="inconsistent"):
            configurator.bands_for(api, "P")

    def test_no_pods_empty_bands(self):
        api = MockKubeApi()
        configurator = NetworkPriorityConfigurator()
        assert configurator.bands_for(api, "P") == {}

    def test_invalid_bands(self):
        with pytest.raises(ValueError, match="bands"):
            NetworkPriorityConfigurator(bands=0)
