"""Tests for repro.tracing: spans, coordinator, metrics store."""

import pytest

from repro.graphs import DependencyGraph, call
from repro.tracing import (
    MetricsStore,
    Span,
    SpanKind,
    TraceRecord,
    TracingCoordinator,
    synthesize_trace,
)
from repro.tracing.coordinator import group_parallel

from tests.helpers import chain_graph, fig1_graph


FIG1_LATENCIES = {"T": 10.0, "Url": 6.0, "U": 8.0, "C": 4.0}


class TestSpan:
    def test_duration(self):
        span = Span("s0", None, "A", SpanKind.SERVER, 1.0, 5.0)
        assert span.duration == pytest.approx(4.0)

    def test_end_before_start_rejected(self):
        with pytest.raises(ValueError, match="before start"):
            Span("s0", None, "A", SpanKind.SERVER, 5.0, 1.0)

    def test_overlaps(self):
        a = Span("a", None, "A", SpanKind.CLIENT, 0.0, 10.0)
        b = Span("b", None, "A", SpanKind.CLIENT, 5.0, 15.0)
        c = Span("c", None, "A", SpanKind.CLIENT, 10.0, 20.0)
        assert a.overlaps(b)
        assert not a.overlaps(c)  # touching endpoints do not overlap


class TestSynthesizeTrace:
    def test_root_span_covers_end_to_end(self):
        graph = fig1_graph()
        trace = synthesize_trace(graph, FIG1_LATENCIES)
        # e2e = T + max(Url, U) + C = 10 + 8 + 4 = 22
        assert trace.end_to_end_latency() == pytest.approx(22.0)

    def test_two_spans_per_call(self):
        graph = fig1_graph()
        trace = synthesize_trace(graph, FIG1_LATENCIES)
        # 4 server spans + 3 client spans (3 calls).
        assert len(trace.spans) == 7
        assert len(trace.server_spans()) == 4

    def test_parallel_client_spans_overlap(self):
        graph = fig1_graph()
        trace = synthesize_trace(graph, FIG1_LATENCIES)
        clients = [s for s in trace.spans if s.kind is SpanKind.CLIENT]
        t_clients = [s for s in clients if s.microservice == "T"]
        url_u = sorted(t_clients, key=lambda s: s.start)[:2]
        assert url_u[0].overlaps(url_u[1])

    def test_network_delay_extends_spans(self):
        graph = chain_graph(["A", "B"])
        plain = synthesize_trace(graph, {"A": 10.0, "B": 5.0})
        delayed = synthesize_trace(graph, {"A": 10.0, "B": 5.0}, network_delay=2.0)
        assert delayed.end_to_end_latency() == pytest.approx(
            plain.end_to_end_latency() + 4.0
        )

    def test_root_detection(self):
        trace = synthesize_trace(fig1_graph(), FIG1_LATENCIES)
        assert trace.root().microservice == "T"


class TestGroupParallel:
    def test_sequential_spans_get_own_stages(self):
        spans = [
            Span("a", None, "X", SpanKind.CLIENT, 0.0, 5.0),
            Span("b", None, "X", SpanKind.CLIENT, 6.0, 9.0),
        ]
        stages = group_parallel(spans)
        assert [len(s) for s in stages] == [1, 1]

    def test_overlapping_spans_share_stage(self):
        spans = [
            Span("a", None, "X", SpanKind.CLIENT, 0.0, 5.0),
            Span("b", None, "X", SpanKind.CLIENT, 2.0, 9.0),
        ]
        stages = group_parallel(spans)
        assert [len(s) for s in stages] == [2]

    def test_chained_overlap_extends_window(self):
        spans = [
            Span("a", None, "X", SpanKind.CLIENT, 0.0, 5.0),
            Span("b", None, "X", SpanKind.CLIENT, 4.0, 10.0),
            Span("c", None, "X", SpanKind.CLIENT, 6.0, 8.0),
        ]
        stages = group_parallel(spans)
        assert [len(s) for s in stages] == [3]

    def test_empty_input(self):
        assert group_parallel([]) == []


class TestTracingCoordinator:
    def test_graph_round_trips(self):
        graph = fig1_graph()
        coordinator = TracingCoordinator()
        coordinator.offer(synthesize_trace(graph, FIG1_LATENCIES))
        extracted = coordinator.extract_graph("fig1")
        assert set(extracted.critical_paths()) == set(graph.critical_paths())

    def test_latency_extraction_recovers_inputs(self):
        """Eq. 1 applied to synthetic spans recovers the own latencies."""
        graph = fig1_graph()
        coordinator = TracingCoordinator()
        coordinator.offer(synthesize_trace(graph, FIG1_LATENCIES))
        samples = coordinator.latency_samples("fig1")
        for name, expected in FIG1_LATENCIES.items():
            assert samples[name][0] == pytest.approx(expected)

    def test_latency_extraction_includes_network_delay(self):
        graph = chain_graph(["A", "B"])
        coordinator = TracingCoordinator()
        coordinator.offer(
            synthesize_trace(graph, {"A": 10.0, "B": 5.0}, network_delay=1.5)
        )
        samples = coordinator.latency_samples("chain")
        # A's own latency absorbs the 2 x 1.5ms round trip (paper: L_i
        # includes transmission latency).
        assert samples["A"][0] == pytest.approx(13.0)
        assert samples["B"][0] == pytest.approx(5.0)

    def test_sampling_rate_filters(self):
        graph = chain_graph(["A", "B"])
        coordinator = TracingCoordinator(sampling_rate=0.1, seed=42)
        accepted = sum(
            coordinator.offer(
                synthesize_trace(graph, {"A": 1.0, "B": 1.0}, trace_id=f"t{i}")
            )
            for i in range(2000)
        )
        assert 120 <= accepted <= 280  # ~10%
        assert coordinator.trace_count("chain") == accepted

    def test_invalid_sampling_rate(self):
        with pytest.raises(ValueError, match="sampling_rate"):
            TracingCoordinator(sampling_rate=0.0)

    def test_extract_graph_without_traces(self):
        with pytest.raises(ValueError, match="no traces"):
            TracingCoordinator().extract_graph("missing")

    def test_merge_dynamic_graphs(self):
        """Two trace variants merge into a complete graph (paper §7)."""
        variant_a = DependencyGraph("svc", call("A", stages=[[call("B")]]))
        variant_b = DependencyGraph("svc", call("A", stages=[[call("C")]]))
        coordinator = TracingCoordinator()
        coordinator.offer(
            synthesize_trace(variant_a, {"A": 5.0, "B": 2.0}, trace_id="t0")
        )
        coordinator.offer(
            synthesize_trace(variant_b, {"A": 5.0, "C": 3.0}, trace_id="t1")
        )
        merged = coordinator.extract_graph("svc")
        assert set(merged.microservices()) == {"A", "B", "C"}

    def test_tail_latency_percentile(self):
        graph = chain_graph(["A", "B"])
        coordinator = TracingCoordinator()
        for index in range(100):
            coordinator.offer(
                synthesize_trace(
                    graph,
                    {"A": float(index + 1), "B": 1.0},
                    trace_id=f"t{index}",
                )
            )
        p95 = coordinator.tail_latency("chain", "A", percentile=95.0)
        assert 94.0 <= p95 <= 97.0

    def test_tail_latency_without_samples(self):
        with pytest.raises(ValueError, match="no latency samples"):
            TracingCoordinator().tail_latency("svc", "A")

    def test_end_to_end_latencies(self):
        graph = chain_graph(["A", "B"])
        coordinator = TracingCoordinator()
        coordinator.offer(synthesize_trace(graph, {"A": 4.0, "B": 6.0}))
        assert coordinator.end_to_end_latencies("chain") == [pytest.approx(10.0)]


class TestMetricsStore:
    def test_mean_utilization(self):
        store = MetricsStore()
        store.record_utilization(0.0, "h0", 0.4, 0.6)
        store.record_utilization(0.5, "h1", 0.8, 0.2)
        cpu, mem = store.mean_utilization()
        assert cpu == pytest.approx(0.6)
        assert mem == pytest.approx(0.4)

    def test_mean_utilization_windowed(self):
        store = MetricsStore()
        store.record_utilization(0.0, "h0", 0.2, 0.2)
        store.record_utilization(5.0, "h0", 0.8, 0.8)
        cpu, _ = store.mean_utilization(window=(4.0, 6.0))
        assert cpu == pytest.approx(0.8)

    def test_mean_utilization_empty(self):
        assert MetricsStore().mean_utilization() == (0.0, 0.0)

    def test_profiling_windows_join(self):
        store = MetricsStore()
        for tick in range(10):
            store.record_latency(0.0 + tick / 20.0, "A", 10.0 + tick)
        store.record_calls(0.1, "A", calls=300.0, containers=3)
        store.record_utilization(0.2, "h0", 0.5, 0.3)
        windows = store.profiling_windows("A")
        assert len(windows) == 1
        window = windows[0]
        assert window.per_container_load == pytest.approx(100.0)
        assert window.cpu_utilization == pytest.approx(0.5)
        assert window.tail_latency >= 18.0  # P95 of 10..19

    def test_window_without_calls_skipped(self):
        store = MetricsStore()
        store.record_latency(0.5, "A", 10.0)
        assert store.profiling_windows("A") == []

    def test_calls_accumulate_within_minute(self):
        store = MetricsStore()
        store.record_latency(3.1, "A", 5.0)
        store.record_calls(3.2, "A", calls=100.0, containers=2)
        store.record_calls(3.7, "A", calls=100.0, containers=2)
        windows = store.profiling_windows("A")
        assert windows[0].per_container_load == pytest.approx(100.0)

    def test_invalid_container_count(self):
        with pytest.raises(ValueError, match="containers"):
            MetricsStore().record_calls(0.0, "A", 1.0, 0)
