"""Tests for the persistent worker pool and run_cells exception semantics.

Covers the contract documented in :mod:`repro.experiments.parallel`:

* a cell-function exception re-raises immediately — it does NOT trigger
  the blanket serial fallback (which would silently re-run every cell);
* only pool-infrastructure failures (unpicklable function, broken pool)
  fall back to the serial path;
* the shared context is visible identically on the serial and the
  parallel path, so ``workers=N`` returns exactly the ``workers=1`` rows;
* a persistent pool keeps its forked workers across maps with the same
  context object and only re-forks when the context changes.
"""

import pytest

from repro.experiments.parallel import WorkerPool, get_context, run_cells


def _record_and_square(cell):
    """Appends one byte per invocation, then squares (or explodes)."""
    with open(get_context()["log"], "a") as fh:
        fh.write("x")
    if cell.get("boom"):
        raise ValueError(f"cell {cell['i']} exploded")
    return cell["i"] ** 2


def _ctx_plus(cell):
    return get_context()["base"] + cell["x"]


def _ident(cell):
    return cell["i"]


def _payload_value(cell):
    value = cell["value"]
    return value() if callable(value) else value


class TestCellErrors:
    def test_cell_error_reraises_with_original_type(self, tmp_path):
        log = tmp_path / "calls.log"
        log.touch()
        cells = [{"i": i, "boom": i == 3} for i in range(6)]
        with pytest.raises(ValueError, match="cell 3 exploded"):
            run_cells(
                _record_and_square,
                cells,
                workers=2,
                context={"log": str(log)},
            )

    def test_cell_error_does_not_rerun_cells_serially(self, tmp_path):
        """The old behavior re-ran every cell in-process before re-raising.

        Each invocation appends one byte to the log (O_APPEND writes are
        atomic across the forked workers); a serial re-run would leave
        close to twice ``len(cells)`` bytes.
        """
        log = tmp_path / "calls.log"
        log.touch()
        cells = [{"i": i, "boom": i == 2} for i in range(8)]
        with pytest.raises(ValueError):
            run_cells(
                _record_and_square,
                cells,
                workers=2,
                context={"log": str(log)},
            )
        assert len(log.read_text()) <= len(cells)

    def test_cell_error_raises_on_serial_path_too(self, tmp_path):
        log = tmp_path / "calls.log"
        log.touch()
        cells = [{"i": i, "boom": i == 1} for i in range(4)]
        with pytest.raises(ValueError, match="cell 1 exploded"):
            run_cells(
                _record_and_square,
                cells,
                workers=1,
                context={"log": str(log)},
            )


class TestInfrastructureFallback:
    def test_unpicklable_fn_falls_back_to_serial(self):
        """A lambda cannot ship to a worker; the serial path still runs it."""
        results = run_cells(
            lambda cell: cell["i"] + 1,
            [{"i": i} for i in range(4)],
            workers=2,
        )
        assert results == [1, 2, 3, 4]

    def test_unpicklable_payload_falls_back_to_serial(self):
        cells = [{"value": (lambda i=i: i)} for i in range(3)]
        assert run_cells(_payload_value, cells, workers=2) == [0, 1, 2]

    def test_unpicklable_map_keeps_pool_healthy(self):
        """The pre-flight check runs serially without touching the workers.

        An unpicklable function must not poison the executor (feeding it
        to the pool would deadlock the queue-feeder thread); subsequent
        picklable maps still run through the pool.
        """
        with WorkerPool(2) as pool:
            pool.set_context({"base": 1})
            first = pool.map(lambda cell: cell["x"] * 10, [{"x": 1}, {"x": 2}])
            assert first == [10, 20]
            assert not pool._broken
            assert pool.map(_ctx_plus, [{"x": 1}, {"x": 2}]) == [2, 3]


class TestSharedContext:
    def test_serial_and_parallel_rows_identical(self):
        cells = [{"x": i} for i in range(8)]
        serial = run_cells(_ctx_plus, cells, workers=1, context={"base": 10})
        parallel = run_cells(_ctx_plus, cells, workers=2, context={"base": 10})
        assert serial == parallel == [10 + i for i in range(8)]

    def test_serial_path_restores_previous_context(self):
        assert get_context() is None
        run_cells(_ctx_plus, [{"x": 0}], workers=1, context={"base": 0})
        assert get_context() is None


class TestPersistentPool:
    def test_same_context_object_keeps_forked_workers(self):
        context = {"base": 5}
        with WorkerPool(2) as pool:
            first = run_cells(
                _ctx_plus, [{"x": 1}, {"x": 2}], context=context, pool=pool
            )
            executor = pool._executor
            second = run_cells(
                _ctx_plus, [{"x": 3}, {"x": 4}], context=context, pool=pool
            )
            # Same context object: the pool must not have re-forked.
            assert pool._executor is executor
        assert first == [6, 7]
        assert second == [8, 9]

    def test_context_change_reships_to_workers(self):
        with WorkerPool(2) as pool:
            low = run_cells(
                _ctx_plus, [{"x": 1}, {"x": 2}], context={"base": 0}, pool=pool
            )
            high = run_cells(
                _ctx_plus,
                [{"x": 1}, {"x": 2}],
                context={"base": 100},
                pool=pool,
            )
        assert low == [1, 2]
        assert high == [101, 102]

    def test_order_preserved_across_chunks(self):
        cells = [{"i": i} for i in range(23)]
        assert run_cells(_ident, cells, workers=3) == list(range(23))

    def test_measure_records_payload_stats(self):
        with WorkerPool(2, measure=True) as pool:
            pool.set_context({"base": 0})
            pool.map(_ctx_plus, [{"x": i} for i in range(6)])
            stats = pool.last_map_stats
        assert stats["cells"] == 6
        assert stats["payload_bytes"] > 0
        assert stats["chunksize"] >= 1
