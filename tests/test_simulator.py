"""Tests for repro.simulator: events, queue policies, cluster simulation."""

import numpy as np
import pytest

from repro.core.model import ServiceSpec
from repro.graphs import DependencyGraph, call
from repro.simulator import (
    ClusterSimulator,
    EventQueue,
    FCFSQueue,
    InterferenceModel,
    PriorityQueuePolicy,
    SimulatedMicroservice,
    SimulationConfig,
)


class TestEventQueue:
    def test_events_run_in_time_order(self):
        queue = EventQueue()
        seen = []
        queue.schedule(5.0, lambda t: seen.append(("b", t)))
        queue.schedule(1.0, lambda t: seen.append(("a", t)))
        queue.run_until(10.0)
        assert seen == [("a", 1.0), ("b", 5.0)]

    def test_ties_break_by_insertion_order(self):
        queue = EventQueue()
        seen = []
        queue.schedule(1.0, lambda t: seen.append("first"))
        queue.schedule(1.0, lambda t: seen.append("second"))
        queue.run_until(2.0)
        assert seen == ["first", "second"]

    def test_run_until_leaves_later_events(self):
        queue = EventQueue()
        seen = []
        queue.schedule(1.0, lambda t: seen.append(1))
        queue.schedule(5.0, lambda t: seen.append(5))
        assert queue.run_until(2.0) == 1
        assert len(queue) == 1
        assert queue.now == 2.0

    def test_schedule_in_past_rejected(self):
        queue = EventQueue()
        queue.schedule(5.0, lambda t: None)
        queue.run_until(5.0)
        with pytest.raises(ValueError, match="past"):
            queue.schedule(1.0, lambda t: None)

    def test_events_can_schedule_events(self):
        queue = EventQueue()
        seen = []

        def first(t):
            queue.schedule_in(2.0, lambda t2: seen.append(t2))

        queue.schedule(1.0, first)
        queue.run_until(10.0)
        assert seen == [3.0]

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            EventQueue().schedule_in(-1.0, lambda t: None)

    def test_infinite_drain_leaves_now_at_last_event(self):
        # Regression: run_until(inf) used to leave now == inf, making a
        # drained-then-reused queue reject (or infinitely defer) every
        # later schedule — e.g. the autoscaled loop's follow-up work.
        queue = EventQueue()
        seen = []
        queue.schedule(3.0, lambda t: seen.append(t))
        queue.schedule(7.0, lambda t: seen.append(t))
        assert queue.run_until(float("inf")) == 2
        assert queue.now == 7.0
        # The queue stays usable after the drain.
        queue.schedule(9.0, lambda t: seen.append(t))
        queue.run_until(float("inf"))
        assert seen == [3.0, 7.0, 9.0]
        assert queue.now == 9.0

    def test_infinite_drain_of_empty_queue_keeps_now_finite(self):
        queue = EventQueue()
        queue.schedule(2.0, lambda t: None)
        queue.run_until(5.0)
        assert queue.run_until(float("inf")) == 0
        assert queue.now == 5.0


class TestFCFSQueue:
    def test_fifo_order(self):
        queue = FCFSQueue()
        queue.push("a", "svc1")
        queue.push("b", "svc2")
        assert queue.pop() == "a"
        assert queue.pop() == "b"
        assert queue.pop() is None

    def test_len(self):
        queue = FCFSQueue()
        assert len(queue) == 0
        queue.push("a", "s")
        assert len(queue) == 1


class TestPriorityQueuePolicy:
    def test_strict_priority_at_delta_zero(self):
        queue = PriorityQueuePolicy({"hot": 0, "cold": 1}, delta=0.0)
        queue.push("c1", "cold")
        queue.push("h1", "hot")
        queue.push("c2", "cold")
        assert queue.pop() == "h1"
        assert queue.pop() == "c1"
        assert queue.pop() == "c2"

    def test_delta_occasionally_serves_low_priority(self):
        rng = np.random.default_rng(0)
        queue = PriorityQueuePolicy({"hot": 0, "cold": 1}, delta=0.3, rng=rng)
        low_first = 0
        trials = 2000
        for _ in range(trials):
            queue.push("h", "hot")
            queue.push("c", "cold")
            if queue.pop() == "c":
                low_first += 1
            # Drain.
            queue.pop()
        assert 0.25 < low_first / trials < 0.35

    def test_unknown_service_gets_lowest_priority(self):
        queue = PriorityQueuePolicy({"hot": 0}, delta=0.0)
        queue.push("x", "stranger")
        queue.push("h", "hot")
        assert queue.pop() == "h"
        assert queue.pop() == "x"

    def test_empty_pop_returns_none(self):
        queue = PriorityQueuePolicy({"hot": 0})
        assert queue.pop() is None

    def test_invalid_delta(self):
        with pytest.raises(ValueError, match="delta"):
            PriorityQueuePolicy({"a": 0}, delta=1.0)

    def test_fifo_within_class(self):
        queue = PriorityQueuePolicy({"hot": 0}, delta=0.0)
        queue.push("h1", "hot")
        queue.push("h2", "hot")
        assert queue.pop() == "h1"
        assert queue.pop() == "h2"


def single_node_setup(rate, containers=1, threads=4, base_ms=5.0, **config_kwargs):
    graph = DependencyGraph("svc", call("B"))
    spec = ServiceSpec("svc", graph, workload=rate, sla=100.0)
    ms = {"B": SimulatedMicroservice("B", base_service_ms=base_ms, threads=threads)}
    config = SimulationConfig(
        duration_min=config_kwargs.pop("duration_min", 1.0),
        warmup_min=config_kwargs.pop("warmup_min", 0.2),
        seed=config_kwargs.pop("seed", 1),
        **config_kwargs,
    )
    return ClusterSimulator(
        [spec], ms, containers={"B": containers}, rates={"svc": rate}, config=config
    )


class TestClusterSimulator:
    def test_all_requests_complete(self):
        result = single_node_setup(rate=3000).run()
        assert result.completed["svc"] == result.generated["svc"]
        assert result.generated["svc"] > 0

    def test_arrival_count_tracks_rate(self):
        result = single_node_setup(rate=6000, duration_min=2.0).run()
        # Poisson with mean 12000 arrivals over 2 minutes.
        assert 11_000 <= result.generated["svc"] <= 13_000

    def test_latency_grows_with_load(self):
        light = single_node_setup(rate=10_000).run()
        heavy = single_node_setup(rate=45_000).run()  # near capacity 48k
        assert heavy.tail_latency("svc") > light.tail_latency("svc") * 1.5

    def test_more_containers_reduce_latency(self):
        one = single_node_setup(rate=45_000, containers=1).run()
        four = single_node_setup(rate=45_000, containers=4).run()
        assert four.tail_latency("svc") < one.tail_latency("svc")

    def test_piecewise_shape_of_latency_curve(self):
        """Fig. 3: flat below the cut-off, steep above."""
        loads = [10_000, 25_000, 40_000, 46_000]
        p95 = [
            single_node_setup(rate=load, duration_min=1.5).run().tail_latency("svc")
            for load in loads
        ]
        early_slope = (p95[1] - p95[0]) / (loads[1] - loads[0])
        late_slope = (p95[3] - p95[2]) / (loads[3] - loads[2])
        assert late_slope > 5 * early_slope

    def test_interference_multiplier_slows_service(self):
        graph = DependencyGraph("svc", call("B"))
        spec = ServiceSpec("svc", graph, workload=0.0, sla=100.0)
        ms = {"B": SimulatedMicroservice("B", base_service_ms=5.0, threads=4)}
        calm = ClusterSimulator(
            [spec], ms, {"B": 1}, {"svc": 20_000},
            config=SimulationConfig(duration_min=1.0, seed=2),
            container_multipliers={"B": [1.0]},
        ).run()
        busy = ClusterSimulator(
            [spec], ms, {"B": 1}, {"svc": 20_000},
            config=SimulationConfig(duration_min=1.0, seed=2),
            container_multipliers={"B": [2.0]},
        ).run()
        assert busy.tail_latency("svc") > calm.tail_latency("svc") * 1.4

    def test_end_to_end_sums_chain(self):
        graph = DependencyGraph("svc", call("A", stages=[[call("B")]]))
        spec = ServiceSpec("svc", graph, workload=0.0, sla=100.0)
        ms = {
            "A": SimulatedMicroservice("A", base_service_ms=2.0),
            "B": SimulatedMicroservice("B", base_service_ms=6.0),
        }
        result = ClusterSimulator(
            [spec], ms, {"A": 4, "B": 4}, {"svc": 5000},
            config=SimulationConfig(duration_min=1.0, seed=3),
        ).run()
        mean_e2e = float(np.mean(result.latencies("svc")))
        # Light load: e2e ~ sum of service means (2 + 6), little queueing.
        assert 7.0 < mean_e2e < 12.0

    def test_parallel_stage_takes_max(self):
        parallel_graph = DependencyGraph(
            "par", call("A", stages=[[call("B"), call("C")]])
        )
        sequential_graph = DependencyGraph(
            "seq", call("A", stages=[[call("B")], [call("C")]])
        )
        ms = {
            "A": SimulatedMicroservice("A", base_service_ms=1.0),
            "B": SimulatedMicroservice("B", base_service_ms=5.0),
            "C": SimulatedMicroservice("C", base_service_ms=5.0),
        }
        containers = {"A": 4, "B": 4, "C": 4}

        def run(graph):
            spec = ServiceSpec(graph.service, graph, workload=0.0, sla=100.0)
            return ClusterSimulator(
                [spec], ms, containers, {graph.service: 3000},
                config=SimulationConfig(duration_min=1.0, seed=4),
            ).run()

        par = run(parallel_graph)
        seq = run(sequential_graph)
        par_mean = float(np.mean(par.latencies("par")))
        seq_mean = float(np.mean(seq.latencies("seq")))
        assert par_mean < seq_mean

    def test_deterministic_given_seed(self):
        a = single_node_setup(rate=5000, seed=9).run()
        b = single_node_setup(rate=5000, seed=9).run()
        assert np.array_equal(a.latencies("svc"), b.latencies("svc"))

    def test_priority_scheduling_protects_high_priority(self):
        """The §2.3 effect at a shared microservice under heavy load."""
        g1 = DependencyGraph("hot", call("P"))
        g2 = DependencyGraph("cold", call("P"))
        specs = [
            ServiceSpec("hot", g1, workload=0.0, sla=50.0),
            ServiceSpec("cold", g2, workload=0.0, sla=300.0),
        ]
        ms = {"P": SimulatedMicroservice("P", base_service_ms=5.0, threads=4)}
        rates = {"hot": 22_000, "cold": 22_000}  # combined near capacity 48k

        fcfs = ClusterSimulator(
            specs, ms, {"P": 1}, rates,
            config=SimulationConfig(duration_min=1.5, seed=5, scheduling="fcfs"),
        ).run()
        priority = ClusterSimulator(
            specs, ms, {"P": 1}, rates,
            config=SimulationConfig(
                duration_min=1.5, seed=5, scheduling="priority", delta=0.05
            ),
            priorities={"P": {"hot": 0, "cold": 1}},
        ).run()
        assert priority.tail_latency("hot") < fcfs.tail_latency("hot")

    def test_dynamic_rate_callable(self):
        graph = DependencyGraph("svc", call("B"))
        spec = ServiceSpec("svc", graph, workload=0.0, sla=100.0)
        ms = {"B": SimulatedMicroservice("B", base_service_ms=1.0, threads=8)}

        def rate(minute):
            return 2000.0 if minute < 1.0 else 10_000.0

        result = ClusterSimulator(
            [spec], ms, {"B": 4}, {"svc": rate},
            config=SimulationConfig(duration_min=2.0, warmup_min=0.0, seed=6),
        ).run()
        first = [m for m, _ in result.end_to_end["svc"] if m < 1.0]
        second = [m for m, _ in result.end_to_end["svc"] if m >= 1.0]
        assert len(second) > 3 * len(first)

    def test_calls_per_minute_recorded(self):
        result = single_node_setup(rate=6000, duration_min=1.0).run()
        total = sum(result.calls_per_minute["B"].values())
        assert total == result.completed["svc"]

    def test_missing_microservice_rejected(self):
        graph = DependencyGraph("svc", call("X"))
        spec = ServiceSpec("svc", graph, workload=0.0, sla=1.0)
        with pytest.raises(ValueError, match="no SimulatedMicroservice"):
            ClusterSimulator([spec], {}, {}, {"svc": 100.0})

    def test_zero_rate_service_generates_nothing(self):
        result = single_node_setup(rate=0.0).run()
        assert result.generated["svc"] == 0

    def test_invalid_config(self):
        with pytest.raises(ValueError, match="duration"):
            SimulationConfig(duration_min=0.0)
        with pytest.raises(ValueError, match="warmup"):
            SimulationConfig(duration_min=1.0, warmup_min=1.0)
        with pytest.raises(ValueError, match="scheduling"):
            SimulationConfig(scheduling="lifo")

    def test_invalid_microservice_params(self):
        with pytest.raises(ValueError, match="base_service_ms"):
            SimulatedMicroservice("A", base_service_ms=0.0)
        with pytest.raises(ValueError, match="threads"):
            SimulatedMicroservice("A", threads=0)


class TestInterferenceModel:
    def test_idle_host_multiplier_is_one(self):
        model = InterferenceModel()
        assert model.multiplier_for(0.0, 0.0) == pytest.approx(1.0)
        assert model.multiplier_for(0.2, 0.3) == pytest.approx(1.0)

    def test_multiplier_grows_with_utilization(self):
        model = InterferenceModel()
        assert model.multiplier_for(0.8, 0.2) > 1.0
        assert model.multiplier_for(0.9, 0.9) > model.multiplier_for(0.5, 0.5)

    def test_memory_weighs_more_than_cpu(self):
        """§5.2: memory pressure is at least as harmful as CPU pressure."""
        model = InterferenceModel()
        cpu_only = model.multiplier_for(0.3 + 0.3, 0.4)
        mem_only = model.multiplier_for(0.3, 0.4 + 0.3)
        assert mem_only >= cpu_only

    def test_host_multiplier_uses_cluster_sizes(self):
        from repro.core import Cluster, ContainerSpec

        cluster = Cluster.homogeneous(1, cpu_capacity=10.0, memory_capacity_mb=1000.0)
        cluster.sizes["ms"] = ContainerSpec(cpu=1.0, memory_mb=100.0)
        host = cluster.hosts[0]
        host.background_cpu = 8.0
        host.place("ms", 1)
        model = InterferenceModel()
        assert model.host_multiplier(cluster, host) == pytest.approx(
            model.multiplier_for(0.9, 0.1)
        )


class TestInterferenceSchedule:
    def test_levels_rotate_by_period(self):
        from repro.simulator import InterferenceSchedule

        schedule = InterferenceSchedule(
            levels=((0.1, 0.1), (0.8, 0.8)), period_min=60.0
        )
        assert schedule.level_at(0.0) == (0.1, 0.1)
        assert schedule.level_at(59.9) == (0.1, 0.1)
        assert schedule.level_at(60.0) == (0.8, 0.8)
        assert schedule.level_at(120.0) == (0.1, 0.1)  # wraps around

    def test_multiplier_tracks_level(self):
        from repro.simulator import InterferenceModel, InterferenceSchedule

        schedule = InterferenceSchedule(
            levels=((0.0, 0.0), (0.9, 0.9)), period_min=1.0
        )
        assert schedule(0.5) == pytest.approx(1.0)
        assert schedule(1.5) == pytest.approx(
            InterferenceModel().multiplier_for(0.9, 0.9)
        )

    def test_random_factory_deterministic(self):
        from repro.simulator import InterferenceSchedule

        a = InterferenceSchedule.random(periods=4, seed=7)
        b = InterferenceSchedule.random(periods=4, seed=7)
        assert a.levels == b.levels
        assert len(a.levels) == 4

    def test_validation(self):
        from repro.simulator import InterferenceSchedule

        with pytest.raises(ValueError, match="non-empty"):
            InterferenceSchedule(levels=())
        with pytest.raises(ValueError, match="period_min"):
            InterferenceSchedule(levels=((0.1, 0.1),), period_min=0.0)
        with pytest.raises(ValueError, match="non-negative"):
            InterferenceSchedule(levels=((-0.1, 0.1),))

    def test_injected_schedule_changes_simulated_latency(self):
        """A container under an hourly injection schedule slows down when
        the heavy level is active — the §6.2 profiling protocol."""
        from repro.simulator import InterferenceSchedule

        schedule = InterferenceSchedule(
            levels=((0.0, 0.0), (0.9, 0.9)), period_min=1.0
        )
        graph = DependencyGraph("svc", call("B"))
        spec = ServiceSpec("svc", graph, workload=0.0, sla=1e9)
        sim = ClusterSimulator(
            [spec],
            {"B": SimulatedMicroservice("B", base_service_ms=5.0, threads=4)},
            containers={"B": 1},
            rates={"svc": 10_000.0},
            config=SimulationConfig(duration_min=2.0, warmup_min=0.0, seed=7),
            container_multipliers={"B": [schedule]},
        )
        result = sim.run()
        calm = [lat for minute, lat in result.end_to_end["svc"] if minute < 1.0]
        busy = [lat for minute, lat in result.end_to_end["svc"] if 1.0 <= minute < 2.0]
        assert np.mean(busy) > 1.5 * np.mean(calm)
