"""Tests for repro.graphs.clustering: the §9 dynamic-graph extension."""

import pytest

from repro.core import ServiceSpec, compute_service_targets
from repro.graphs import DependencyGraph, call
from repro.graphs.clustering import (
    GraphClass,
    class_workloads,
    cluster_graphs,
    graph_similarity,
    merge_variants,
)

from tests.helpers import make_profiles


def variant(*names):
    """A simple chain variant rooted at 'fe'."""
    node = call(names[-1])
    for name in reversed(names[:-1]):
        node = call(name, stages=[[node]])
    return DependencyGraph("svc", call("fe", stages=[[node]]))


class TestGraphSimilarity:
    def test_identical_graphs(self):
        a = variant("a", "b", "c")
        assert graph_similarity(a, variant("a", "b", "c")) == pytest.approx(1.0)

    def test_disjoint_bodies(self):
        # Only the frontend is common.
        a = variant("a", "b")
        b = variant("x", "y")
        assert graph_similarity(a, b) < 0.25

    def test_partial_overlap_between(self):
        a = variant("a", "b", "c")
        b = variant("a", "b", "d")
        score = graph_similarity(a, b)
        assert 0.3 < score < 0.9

    def test_symmetric(self):
        a, b = variant("a", "b"), variant("a", "c")
        assert graph_similarity(a, b) == pytest.approx(graph_similarity(b, a))


class TestMergeVariants:
    def test_union_of_microservices(self):
        merged = merge_variants("svc", [variant("a", "b"), variant("a", "c")])
        assert set(merged.microservices()) == {"fe", "a", "b", "c"}

    def test_single_variant_unchanged(self):
        merged = merge_variants("svc", [variant("a", "b")])
        assert set(merged.critical_paths()) == {("fe", "a", "b")}

    def test_does_not_mutate_inputs(self):
        a = variant("a", "b")
        before = a.node_count()
        merge_variants("svc", [a, variant("a", "c")])
        assert a.node_count() == before

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            merge_variants("svc", [])


class TestClusterGraphs:
    def test_identical_variants_one_class(self):
        variants = [variant("a", "b") for _ in range(5)]
        classes = cluster_graphs(variants)
        assert len(classes) == 1
        assert classes[0].size() == 5
        assert classes[0].weight == pytest.approx(1.0)

    def test_distinct_families_split(self):
        family_a = [variant("a", "b", "c"), variant("a", "b", "c2")]
        family_b = [variant("x", "y", "z"), variant("x", "y", "z2")]
        classes = cluster_graphs(family_a + family_b, similarity_threshold=0.4)
        assert len(classes) == 2
        sizes = sorted(cls.size() for cls in classes)
        assert sizes == [2, 2]

    def test_threshold_one_keeps_variants_apart(self):
        variants = [variant("a", "b"), variant("a", "c")]
        classes = cluster_graphs(variants, similarity_threshold=1.0)
        assert len(classes) == 2

    def test_threshold_zero_single_class(self):
        variants = [variant("a", "b"), variant("x", "y"), variant("p", "q")]
        classes = cluster_graphs(variants, similarity_threshold=0.0)
        assert len(classes) == 1
        assert set(classes[0].representative.microservices()) >= {
            "a", "b", "x", "y", "p", "q",
        }

    def test_weights_follow_frequencies(self):
        variants = [variant("a", "b"), variant("x", "y")]
        classes = cluster_graphs(
            variants, frequencies=[9.0, 1.0], similarity_threshold=0.5
        )
        weights = sorted(cls.weight for cls in classes)
        assert weights == [pytest.approx(0.1), pytest.approx(0.9)]

    def test_weights_sum_to_one(self):
        variants = [variant("a", "b"), variant("a", "c"), variant("x", "y")]
        classes = cluster_graphs(variants, frequencies=[3.0, 2.0, 5.0])
        assert sum(cls.weight for cls in classes) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one"):
            cluster_graphs([])
        with pytest.raises(ValueError, match="similarity_threshold"):
            cluster_graphs([variant("a")], similarity_threshold=2.0)
        with pytest.raises(ValueError, match="frequencies"):
            cluster_graphs([variant("a")], frequencies=[1.0, 2.0])


class TestPerClassScaling:
    def test_per_class_scaling_saves_containers(self):
        """The §9 motivation: complete-graph scaling over-provisions.

        90% of requests take a short path; 10% touch an expensive branch.
        Scaling the complete graph charges every request for the branch.
        """
        short = variant("core")
        long = DependencyGraph(
            "svc",
            call("fe", stages=[[call("core", stages=[[call("heavy")]])]]),
        )
        profiles = make_profiles(
            [("fe", 0.5, 1.0), ("core", 1.0, 2.0), ("heavy", 4.0, 5.0)]
        )
        workload, sla = 50_000.0, 120.0

        complete = merge_variants("svc", [short, long])
        complete_containers = sum(
            compute_service_targets(
                ServiceSpec("svc", complete, workload, sla), profiles
            ).containers.values()
        )

        classes = cluster_graphs(
            [short, long], frequencies=[0.9, 0.1], similarity_threshold=0.9
        )
        loads = class_workloads(classes, workload)
        per_class_total = 0
        for cls, load in zip(classes, loads):
            result = compute_service_targets(
                ServiceSpec("svc", cls.representative, load, sla), profiles
            )
            per_class_total += sum(result.containers.values())

        assert per_class_total < complete_containers

    def test_class_workload_split(self):
        classes = [
            GraphClass(representative=variant("a"), members=[0], weight=0.25),
            GraphClass(representative=variant("b"), members=[1], weight=0.75),
        ]
        assert class_workloads(classes, 1000.0) == [250.0, 750.0]

    def test_negative_workload_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            class_workloads([], -1.0)
