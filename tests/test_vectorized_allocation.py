"""Property tests: the vectorized/cached allocation core is bit-identical.

The optimizations under test (PR: grid-batched Eq. 5, merge-tree cache,
cross-cell targets memo, incremental provisioner index) all claim *exact*
equality with the scalar reference path, not approximate equality.  Each
test drives randomized inputs (graphs, segments, place/release sequences)
through both paths and compares with ``==`` on floats.
"""

import random

import numpy as np
import pytest

from repro.core import (
    ContainerSpec,
    ErmsScaler,
    InfeasibleSLAError,
    InterferenceAwareProvisioner,
    KubernetesDefaultProvisioner,
    LatencySegment,
    MicroserviceProfile,
    PiecewiseLatencyModel,
    ServiceSpec,
    clear_merge_cache,
    clear_targets_memo,
    compute_service_targets,
    compute_targets_grid,
    merge_tree_cache,
    set_targets_memo,
    targets_memo_stats,
)
from repro.core.merge import distribute_targets, distribute_targets_batch
from repro.core.provisioning import Cluster
from repro.graphs import DependencyGraph, call


@pytest.fixture(autouse=True)
def _clean_caches():
    """Every test starts and ends with cold caches and the memo enabled."""
    set_targets_memo(True)
    clear_targets_memo()
    clear_merge_cache()
    yield
    set_targets_memo(True)
    clear_targets_memo()
    clear_merge_cache()


def random_graph(rng: random.Random, max_depth: int = 3) -> DependencyGraph:
    """A random call tree; ~30% of nodes reuse an earlier microservice name
    (shared microservices at multiple call sites exercise the per-name
    minimum fold of the batch path)."""
    counter = [0]
    names = []

    def new_name():
        if names and rng.random() < 0.3:
            return rng.choice(names)
        name = f"ms{counter[0]}"
        counter[0] += 1
        names.append(name)
        return name

    def build(depth):
        n_stages = rng.randint(0, 2) if depth < max_depth else 0
        stages = [
            [build(depth + 1) for _ in range(rng.randint(1, 2))]
            for _ in range(n_stages)
        ]
        return call(
            new_name(),
            stages=stages,
            calls_per_request=rng.choice([1.0, 1.0, 1.0, 2.0]),
        )

    return DependencyGraph(service="rand", root=build(0))


def random_profiles(rng: random.Random, graph: DependencyGraph):
    """Two-segment profiles with independent low/high intercepts, so
    §5.3.1 switching can change the merged latency floor between passes."""
    profiles = {}
    for name in graph.microservices():
        slope = rng.uniform(0.3, 4.0)
        intercept = rng.uniform(0.5, 4.0)
        profiles[name] = MicroserviceProfile(
            name=name,
            model=PiecewiseLatencyModel(
                low=LatencySegment(
                    slope * rng.uniform(0.15, 0.8),
                    intercept * rng.uniform(0.8, 1.3),
                ),
                high=LatencySegment(slope, intercept),
                cutoff=rng.uniform(20.0, 80.0),
            ),
            resource_demand=rng.uniform(0.5, 2.0),
            container=ContainerSpec(cpu=0.1, memory_mb=200.0),
        )
    return profiles


def assert_targets_equal(left, right):
    """Field-for-field exact equality of two ServiceTargets."""
    assert left.targets == right.targets
    assert left.containers == right.containers
    assert left.segments == right.segments
    assert left.workloads == right.workloads
    assert left.merged_intercept == right.merged_intercept
    assert left.passes == right.passes


class TestBatchedEq5:
    def test_distribute_targets_batch_matches_scalar_columns(self):
        for seed in range(20):
            rng = random.Random(seed)
            graph = random_graph(rng)
            profiles = random_profiles(rng, graph)
            segments = {}
            for name in graph.microservices():
                model = profiles[name].model
                segments[name] = (
                    model.high if rng.random() < 0.7 else model.low
                )
            tree = merge_tree_cache().tree(graph, profiles, segments)
            floor = tree.params.intercept
            slas = np.array(
                [floor + delta for delta in (0.5, 7.5, 33.3, 120.0)]
            )
            batch = distribute_targets_batch(tree, slas)
            for j, sla in enumerate(slas):
                scalar = distribute_targets(tree, float(sla))
                assert set(batch) == set(scalar)
                for node_id, values in batch.items():
                    assert values[j] == scalar[node_id]


class TestGridTargets:
    def test_grid_matches_scalar_per_cell(self):
        workloads = [800.0, 3_000.0, 12_000.0, 48_000.0]
        for seed in range(12):
            rng = random.Random(100 + seed)
            graph = random_graph(rng)
            profiles = random_profiles(rng, graph)
            set_targets_memo(False)
            probe = ServiceSpec("rand", graph, workload=800.0, sla=1.0e9)
            floor = compute_service_targets(probe, profiles).merged_intercept
            # SLAs straddling the feasibility floor, including one below it.
            slas = [
                floor * 0.8,
                floor + 2.0,
                floor * 3.0 + 10.0,
                floor * 8.0 + 50.0,
            ]
            grid = compute_targets_grid(probe, profiles, workloads, slas)
            for wi, workload in enumerate(workloads):
                for si, sla in enumerate(slas):
                    spec = ServiceSpec(
                        "rand", graph, workload=workload, sla=sla
                    )
                    try:
                        scalar = compute_service_targets(spec, profiles)
                    except InfeasibleSLAError:
                        with pytest.raises(InfeasibleSLAError):
                            grid.cell(wi, si)
                        continue
                    assert_targets_equal(grid.cell(wi, si), scalar)

    def test_grid_batches_merge_tree_walks(self):
        """The point of the grid path: far fewer tree builds than cells."""
        rng = random.Random(7)
        graph = random_graph(rng)
        profiles = random_profiles(rng, graph)
        workloads = [1_000.0 * k for k in range(1, 9)]
        slas = [40.0, 80.0, 160.0, 320.0]
        clear_merge_cache()
        compute_targets_grid(
            ServiceSpec("rand", graph, workload=0.0, sla=100.0),
            profiles,
            workloads,
            slas,
        )
        cache = merge_tree_cache()
        # One tree per segment-assignment group, never per cell.
        assert cache.misses <= len(slas)
        assert cache.misses < len(workloads) * len(slas)


class TestTargetsMemo:
    def test_memoized_matches_fresh(self):
        for seed in range(8):
            rng = random.Random(200 + seed)
            graph = random_graph(rng)
            profiles = random_profiles(rng, graph)
            specs = [
                ServiceSpec("rand", graph, workload=w, sla=90.0)
                for w in (500.0, 2_000.0, 8_000.0, 32_000.0)
            ]
            set_targets_memo(False)
            fresh = [compute_service_targets(s, profiles) for s in specs]
            set_targets_memo(True)
            clear_targets_memo()
            warm = [compute_service_targets(s, profiles) for s in specs]
            again = [compute_service_targets(s, profiles) for s in specs]
            stats = targets_memo_stats()
            # Cells differ only in workload -> one miss, the rest hits.
            assert stats["misses"] == 1
            assert stats["hits"] == 2 * len(specs) - 1
            for f, w, a in zip(fresh, warm, again):
                assert_targets_equal(f, w)
                assert_targets_equal(f, a)

    def test_memoized_infeasible_raises_like_fresh(self):
        rng = random.Random(303)
        graph = random_graph(rng)
        profiles = random_profiles(rng, graph)
        spec = ServiceSpec("rand", graph, workload=1_000.0, sla=1e-6)
        for _ in range(2):  # second call hits the memoized infeasible entry
            with pytest.raises(InfeasibleSLAError, match="latency floor"):
                compute_service_targets(spec, profiles)

    def test_memo_distinguishes_override_ratios(self):
        """§5.3.2 overrides change the slope scaling; the memo must not
        collapse them with the no-override cell."""
        rng = random.Random(404)
        graph = random_graph(rng)
        profiles = random_profiles(rng, graph)
        name = graph.microservices()[0]
        spec = ServiceSpec("rand", graph, workload=4_000.0, sla=150.0)
        own = spec.microservice_workloads()[name]
        plain = compute_service_targets(spec, profiles)
        overridden = compute_service_targets(
            spec, profiles, workload_overrides={name: own * 3.0}
        )
        set_targets_memo(False)
        plain_fresh = compute_service_targets(spec, profiles)
        overridden_fresh = compute_service_targets(
            spec, profiles, workload_overrides={name: own * 3.0}
        )
        assert_targets_equal(plain, plain_fresh)
        assert_targets_equal(overridden, overridden_fresh)
        assert overridden.targets != plain.targets or (
            overridden.containers != plain.containers
        )


def _apply_with_fresh_choices(provisioner, cluster, desired):
    """Mirror ``Provisioner.apply`` but re-choose every host with a fresh
    full recompute (``index=None``), mutating hosts directly — the scalar
    reference the incremental ClusterIndex must match action for action."""
    actions = []
    current = cluster.placement()
    names = sorted(set(desired) | set(current))
    for name in names:
        if name not in cluster.sizes:
            cluster.sizes[name] = ContainerSpec()
    for name in names:
        delta = desired.get(name, 0) - current.get(name, 0)
        for _ in range(delta):
            host = provisioner.choose_placement_host(cluster, name)
            host.place(name)
            actions.append((host.host_id, name, +1))
        for _ in range(-delta):
            host = provisioner.choose_release_host(cluster, name)
            host.release(name)
            actions.append((host.host_id, name, -1))
    return actions


class TestIncrementalProvisioning:
    @pytest.mark.parametrize(
        "make_provisioner",
        [
            lambda rng: InterferenceAwareProvisioner(
                groups=rng.randint(1, 3)
            ),
            lambda rng: KubernetesDefaultProvisioner(),
        ],
        ids=["interference-aware", "k8s-default"],
    )
    def test_indexed_apply_matches_full_recompute(self, make_provisioner):
        for seed in range(10):
            rng = random.Random(seed)
            n_hosts = rng.randint(1, 10)
            names = [f"m{i}" for i in range(rng.randint(1, 4))]

            def build_cluster():
                cluster = Cluster.homogeneous(n_hosts)
                setup = random.Random(seed * 7 + 1)
                for host in cluster.hosts:
                    host.background_cpu = setup.uniform(0.0, 8.0)
                    host.background_memory_mb = setup.uniform(0.0, 16_000.0)
                for name in names:
                    cluster.sizes[name] = ContainerSpec(
                        cpu=setup.uniform(0.1, 1.0),
                        memory_mb=setup.uniform(100.0, 2_000.0),
                    )
                return cluster

            indexed = build_cluster()
            reference = build_cluster()
            provisioner = make_provisioner(rng)
            for _ in range(5):  # scale up AND down across steps
                desired = {name: rng.randint(0, 12) for name in names}
                plan = provisioner.apply(indexed, desired)
                expected = _apply_with_fresh_choices(
                    provisioner, reference, desired
                )
                assert [
                    (a.host_id, a.microservice, a.delta)
                    for a in plan.actions
                ] == expected
            assert [h.containers for h in indexed.hosts] == [
                h.containers for h in reference.hosts
            ]


class TestSweepParity:
    def test_static_sweep_serial_matches_pool_parallel(self):
        from repro.experiments import run_static_sweep
        from repro.experiments.parallel import WorkerPool
        from repro.workloads import social_network

        app = social_network()
        grid = dict(
            workloads=[4_000.0, 16_000.0],
            slas=[250.0],
            simulate=True,
            duration_min=0.3,
            warmup_min=0.1,
            seed=3,
        )
        serial = run_static_sweep(app, [ErmsScaler()], workers=1, **grid)
        with WorkerPool(2) as pool:
            parallel = run_static_sweep(
                app, [ErmsScaler()], workers=2, pool=pool, **grid
            )
        assert serial.rows == parallel.rows
