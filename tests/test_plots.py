"""Tests for the terminal plotting helpers."""

import pytest

from repro.experiments import bar_chart, cdf_table, sparkline


class TestSparkline:
    def test_length_matches_input(self):
        assert len(sparkline([1.0, 2.0, 3.0])) == 3

    def test_resamples_to_width(self):
        assert len(sparkline(range(100), width=10)) == 10

    def test_constant_series(self):
        line = sparkline([5.0, 5.0, 5.0])
        assert len(set(line)) == 1

    def test_extremes_use_extreme_blocks(self):
        line = sparkline([0.0, 10.0])
        assert line[0] < line[1]

    def test_empty(self):
        assert sparkline([]) == ""


class TestBarChart:
    def test_rows_per_entry(self):
        chart = bar_chart({"a": 10.0, "b": 5.0})
        assert len(chart.splitlines()) == 2

    def test_longest_bar_for_max(self):
        lines = bar_chart({"a": 10.0, "b": 5.0}, width=10).splitlines()
        assert lines[0].count("█") > lines[1].count("█")

    def test_zero_value_marked(self):
        chart = bar_chart({"a": 10.0, "b": 0.0})
        assert "·" in chart

    def test_empty(self):
        assert bar_chart({}) == "(no data)"


class TestCdfTable:
    def test_has_header_and_rows(self):
        table = cdf_table({"x": [1, 2, 3]}, points=3)
        lines = table.splitlines()
        assert "pctl" in lines[0]
        assert len(lines) == 2 + 3

    def test_percentiles_monotone(self):
        table = cdf_table({"x": list(range(100))}, points=5)
        values = [
            float(line.split()[-1]) for line in table.splitlines()[2:]
        ]
        assert values == sorted(values)

    def test_empty(self):
        assert cdf_table({}) == "(no data)"
