"""Tests for repro.graphs: dependency model, builder, validation."""

import pytest

from repro.graphs import (
    CallNode,
    DependencyGraph,
    GraphBuilder,
    GraphValidationError,
    call,
    validate_graph,
)

from tests.helpers import chain_graph, fig1_graph


class TestCallNode:
    def test_walk_depth_first(self):
        graph = fig1_graph()
        names = [node.microservice for node in graph.root.walk()]
        assert names == ["T", "Url", "U", "C"]

    def test_children_iterates_all_stages(self):
        graph = fig1_graph()
        children = [c.microservice for c in graph.root.children()]
        assert children == ["Url", "U", "C"]

    def test_add_sequential_creates_new_stage(self):
        node = call("A")
        node.add_sequential(call("B"))
        node.add_sequential(call("C"))
        assert len(node.stages) == 2

    def test_add_parallel_joins_last_stage(self):
        node = call("A")
        node.add_sequential(call("B"))
        node.add_parallel(call("C"))
        assert len(node.stages) == 1
        assert [c.microservice for c in node.stages[0]] == ["B", "C"]

    def test_add_parallel_to_empty_creates_stage(self):
        node = call("A")
        node.add_parallel(call("B"))
        assert len(node.stages) == 1


class TestDependencyGraph:
    def test_fig1_critical_paths(self):
        graph = fig1_graph()
        assert set(graph.critical_paths()) == {("T", "Url", "C"), ("T", "U", "C")}

    def test_chain_has_single_path(self):
        graph = chain_graph(["A", "B", "C", "D"])
        assert graph.critical_paths() == [("A", "B", "C", "D")]

    def test_node_and_edge_counts(self):
        graph = fig1_graph()
        assert graph.node_count() == 4
        assert graph.edge_count() == 3

    def test_depth_counts_longest_chain(self):
        assert fig1_graph().depth() == 3
        assert chain_graph(["A", "B", "C", "D", "E"]).depth() == 5

    def test_microservices_unique_in_order(self):
        graph = DependencyGraph(
            "dup", call("A", stages=[[call("B", stages=[[call("A2")]]), call("B")]])
        )
        assert graph.microservices() == ["A", "B", "A2"]

    def test_workload_multipliers_simple(self):
        graph = fig1_graph()
        assert graph.workload_multipliers() == {
            "T": 1.0,
            "Url": 1.0,
            "U": 1.0,
            "C": 1.0,
        }

    def test_workload_multipliers_with_fanout(self):
        graph = DependencyGraph(
            "fan",
            call("A", stages=[[call("B", calls_per_request=3.0,
                                    stages=[[call("C", calls_per_request=2.0)]])]]),
        )
        multipliers = graph.workload_multipliers()
        assert multipliers["B"] == pytest.approx(3.0)
        assert multipliers["C"] == pytest.approx(6.0)

    def test_workload_multipliers_accumulate_repeats(self):
        # Microservice B appears at two call sites.
        graph = DependencyGraph(
            "rep", call("A", stages=[[call("B")], [call("B")]])
        )
        assert graph.workload_multipliers()["B"] == pytest.approx(2.0)

    def test_end_to_end_latency_sequential(self):
        graph = chain_graph(["A", "B", "C"])
        latencies = {"A": 1.0, "B": 2.0, "C": 3.0}
        assert graph.end_to_end_latency(latencies) == pytest.approx(6.0)

    def test_end_to_end_latency_parallel_takes_max(self):
        graph = fig1_graph()
        latencies = {"T": 1.0, "Url": 5.0, "U": 2.0, "C": 3.0}
        # T + max(Url, U) + C
        assert graph.end_to_end_latency(latencies) == pytest.approx(9.0)

    def test_end_to_end_equals_max_critical_path(self):
        graph = fig1_graph()
        latencies = {"T": 1.0, "Url": 5.0, "U": 2.0, "C": 3.0}
        best = max(
            graph.path_latency(p, latencies) for p in graph.critical_paths()
        )
        assert graph.end_to_end_latency(latencies) == pytest.approx(best)

    def test_critical_path_limit(self):
        # 3 stages x 2 parallel branches = 8 paths; limit caps enumeration.
        stages = [[call(f"P{i}a"), call(f"P{i}b")] for i in range(3)]
        graph = DependencyGraph("wide", call("root", stages=stages))
        assert len(graph.critical_paths()) == 8
        assert len(graph.critical_paths(limit=3)) == 3


class TestGraphBuilder:
    def test_build_fig1_incrementally(self):
        builder = GraphBuilder("fig1")
        t = builder.set_root("T")
        url = builder.add_parallel(t, "Url")
        builder.add_parallel(t, "U", stage=url)
        builder.add_sequential(t, "C")
        graph = builder.build()
        assert set(graph.critical_paths()) == {("T", "Url", "C"), ("T", "U", "C")}

    def test_root_twice_rejected(self):
        builder = GraphBuilder("svc")
        builder.set_root("A")
        with pytest.raises(ValueError, match="root already set"):
            builder.set_root("B")

    def test_build_without_root_rejected(self):
        with pytest.raises(ValueError, match="no root"):
            GraphBuilder("svc").build()

    def test_parallel_with_unknown_stage_rejected(self):
        builder = GraphBuilder("svc")
        root = builder.set_root("A")
        stranger = CallNode("X")
        with pytest.raises(ValueError, match="not a direct downstream"):
            builder.add_parallel(root, "B", stage=stranger)

    def test_build_validates_by_default(self):
        builder = GraphBuilder("svc")
        root = builder.set_root("A")
        builder.add_sequential(root, "A")  # recursive self-call
        with pytest.raises(GraphValidationError):
            builder.build()


class TestValidation:
    def test_valid_graph_passes(self):
        validate_graph(fig1_graph())

    def test_empty_service_name(self):
        with pytest.raises(GraphValidationError, match="service name"):
            validate_graph(DependencyGraph("", call("A")))

    def test_empty_microservice_name(self):
        with pytest.raises(GraphValidationError, match="microservice name"):
            validate_graph(DependencyGraph("svc", call("")))

    def test_cycle_detection(self):
        graph = DependencyGraph(
            "svc", call("A", stages=[[call("B", stages=[[call("A")]])]])
        )
        with pytest.raises(GraphValidationError, match="recursive call cycle"):
            validate_graph(graph)

    def test_sibling_repeat_is_allowed(self):
        # The same microservice on two parallel branches is legal sharing.
        graph = DependencyGraph("svc", call("A", stages=[[call("B"), call("B")]]))
        validate_graph(graph)

    def test_empty_stage_rejected(self):
        node = call("A")
        node.stages.append([])
        with pytest.raises(GraphValidationError, match="stage 0 .* is empty"):
            validate_graph(DependencyGraph("svc", node))

    def test_nonpositive_fanout_rejected(self):
        graph = DependencyGraph("svc", call("A", calls_per_request=0.0))
        with pytest.raises(GraphValidationError, match="calls_per_request"):
            validate_graph(graph)


class TestPathHelpers:
    def test_path_latency_sums_names(self):
        graph = fig1_graph()
        latencies = {"T": 1.0, "Url": 2.0, "U": 3.0, "C": 4.0}
        assert graph.path_latency(("T", "Url", "C"), latencies) == pytest.approx(7.0)

    def test_edge_count_matches_rows(self):
        graph = chain_graph(["A", "B", "C", "D", "E"])
        assert graph.edge_count() == 4
