"""Tests for repro.workloads.prediction: Holt forecasting for scaling."""

import numpy as np
import pytest

from repro.workloads import (
    DiurnalRate,
    HoltPredictor,
    LastValuePredictor,
    backtest,
)


class TestLastValuePredictor:
    def test_predicts_last_observation(self):
        predictor = LastValuePredictor()
        predictor.observe(100.0)
        predictor.observe(250.0)
        assert predictor.predict() == 250.0
        assert predictor.predict(horizon=5.0) == 250.0

    def test_predict_before_observe_rejected(self):
        with pytest.raises(RuntimeError, match="no observations"):
            LastValuePredictor().predict()

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            LastValuePredictor().observe(-1.0)


class TestHoltPredictor:
    def test_constant_series(self):
        predictor = HoltPredictor()
        for _ in range(10):
            predictor.observe(500.0)
        assert predictor.predict() == pytest.approx(500.0, rel=0.01)

    def test_linear_trend_extrapolated(self):
        predictor = HoltPredictor(alpha=0.8, beta=0.8)
        for step in range(20):
            predictor.observe(100.0 + 10.0 * step)
        # Last observation 290; one step ahead should be near 300.
        assert predictor.predict(1.0) == pytest.approx(300.0, rel=0.05)

    def test_forecast_floored_at_zero(self):
        predictor = HoltPredictor(alpha=0.9, beta=0.9)
        for value in (100.0, 50.0, 10.0, 1.0):
            predictor.observe(value)
        assert predictor.predict(horizon=50.0) == 0.0

    def test_beats_last_value_on_rising_edge(self):
        """The reason to predict: smaller lag error on ramps."""
        rate = DiurnalRate(base=10_000.0, amplitude=0.6, period_min=60.0,
                           noise_sigma=0.0, seed=0)
        series = [rate(float(minute)) for minute in range(0, 60, 3)]
        actuals = np.array(series[1:])
        holt = np.array(backtest(HoltPredictor(), series, horizon=1.0)[:-1])
        naive = np.array(backtest(LastValuePredictor(), series, horizon=1.0)[:-1])
        holt_error = float(np.mean(np.abs(holt - actuals)))
        naive_error = float(np.mean(np.abs(naive - actuals)))
        assert holt_error < naive_error

    def test_invalid_params(self):
        with pytest.raises(ValueError, match="alpha"):
            HoltPredictor(alpha=0.0)
        with pytest.raises(ValueError, match="beta"):
            HoltPredictor(beta=1.5)

    def test_predict_before_observe_rejected(self):
        with pytest.raises(RuntimeError, match="no observations"):
            HoltPredictor().predict()


class TestBacktest:
    def test_one_forecast_per_observation(self):
        forecasts = backtest(LastValuePredictor(), [1.0, 2.0, 3.0])
        assert forecasts == [1.0, 2.0, 3.0]
