"""Cross-module property-based tests of system invariants.

These pin down behaviours the unit tests only sample:

* the scaling pipeline always produces allocations that meet the SLA
  under its own model, for random graphs/profiles/workloads;
* `best_effort_containers` is monotone (tighter targets or more workload
  never mean fewer containers) and regime-consistent;
* the simulator conserves requests and respects latency lower bounds;
* graph clustering always partitions variants and preserves weight mass.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    LatencySegment,
    MicroserviceProfile,
    PiecewiseLatencyModel,
    ServiceSpec,
    compute_service_targets,
    predicted_end_to_end,
)
from repro.core.model import best_effort_containers
from repro.graphs import CallNode, DependencyGraph

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------


@st.composite
def piecewise_models(draw):
    base = draw(st.floats(min_value=0.5, max_value=20.0))
    cutoff = draw(st.floats(min_value=50.0, max_value=5_000.0))
    low_slope = base * draw(st.floats(min_value=0.1, max_value=1.0)) / cutoff
    steepness = draw(st.floats(min_value=2.0, max_value=15.0))
    high_slope = low_slope * steepness
    knee = low_slope * cutoff + 2.0 * base  # continuous at the cutoff
    return PiecewiseLatencyModel(
        low=LatencySegment(low_slope, 2.0 * base),
        high=LatencySegment(high_slope, knee - high_slope * cutoff),
        cutoff=cutoff,
        max_load=1.3 * cutoff,
    )


@st.composite
def random_services(draw, max_nodes=8):
    """A random call tree plus consistent profiles."""
    n = draw(st.integers(min_value=1, max_value=max_nodes))
    names = [f"m{i}" for i in range(n)]
    nodes = [CallNode(names[0])]
    for name in names[1:]:
        parent = nodes[draw(st.integers(0, len(nodes) - 1))]
        child = CallNode(name)
        if parent.stages and draw(st.booleans()):
            parent.stages[-1].append(child)
        else:
            parent.stages.append([child])
        nodes.append(child)
    graph = DependencyGraph("svc", nodes[0])
    profiles = {
        name: MicroserviceProfile(
            name=name, model=draw(piecewise_models()), resource_demand=0.1
        )
        for name in names
    }
    workload = draw(st.floats(min_value=100.0, max_value=100_000.0))
    return graph, profiles, workload


# ----------------------------------------------------------------------
# Scaling pipeline invariants
# ----------------------------------------------------------------------


class TestScalingInvariants:
    @given(random_services(), st.floats(min_value=1.2, max_value=4.0))
    @settings(max_examples=60, deadline=None)
    def test_allocation_meets_sla_under_own_model(self, service, slack):
        graph, profiles, workload = service
        # Choose an SLA comfortably above the graph's latency floor.
        floor = graph.end_to_end_latency(
            {n: profiles[n].model.low.intercept for n in graph.microservices()}
        )
        spec = ServiceSpec("svc", graph, workload=workload, sla=floor * slack + 5.0)
        result = compute_service_targets(spec, profiles)
        e2e = predicted_end_to_end(spec, profiles, result.containers)
        assert e2e <= spec.sla * 1.0 + 1e-6

    @given(random_services())
    @settings(max_examples=40, deadline=None)
    def test_targets_cover_every_microservice(self, service):
        graph, profiles, workload = service
        floor = graph.end_to_end_latency(
            {n: profiles[n].model.low.intercept for n in graph.microservices()}
        )
        spec = ServiceSpec("svc", graph, workload=workload, sla=floor * 2 + 10.0)
        result = compute_service_targets(spec, profiles)
        assert set(result.targets) == set(graph.microservices())
        assert all(count >= 1 for count in result.containers.values())

    @given(random_services())
    @settings(max_examples=40, deadline=None)
    def test_more_workload_never_fewer_containers(self, service):
        graph, profiles, workload = service
        floor = graph.end_to_end_latency(
            {n: profiles[n].model.low.intercept for n in graph.microservices()}
        )
        sla = floor * 2 + 10.0
        light = compute_service_targets(
            ServiceSpec("svc", graph, workload=workload, sla=sla), profiles
        )
        heavy = compute_service_targets(
            ServiceSpec("svc", graph, workload=workload * 2, sla=sla), profiles
        )
        assert sum(heavy.containers.values()) >= sum(light.containers.values())


class TestBestEffortInvariants:
    @given(
        piecewise_models(),
        st.floats(min_value=1.0, max_value=100_000.0),
        st.floats(min_value=0.1, max_value=500.0),
    )
    @settings(max_examples=150)
    def test_result_is_positive(self, model, workload, target):
        assert best_effort_containers(model, workload, target) >= 1

    @given(
        piecewise_models(),
        st.floats(min_value=1.0, max_value=100_000.0),
        st.floats(min_value=0.1, max_value=500.0),
    )
    @settings(max_examples=150)
    def test_tighter_target_never_fewer_containers(self, model, workload, target):
        looser = best_effort_containers(model, workload, target * 1.5)
        tighter = best_effort_containers(model, workload, target)
        assert tighter >= looser

    @given(
        piecewise_models(),
        st.floats(min_value=1.0, max_value=50_000.0),
        st.floats(min_value=0.1, max_value=500.0),
    )
    @settings(max_examples=150)
    def test_more_workload_never_fewer_containers(self, model, workload, target):
        light = best_effort_containers(model, workload, target)
        heavy = best_effort_containers(model, workload * 2.0, target)
        assert heavy >= light

    @given(piecewise_models(), st.floats(min_value=1.0, max_value=50_000.0))
    @settings(max_examples=100)
    def test_achievable_targets_are_met(self, model, workload):
        """For targets above the knee, the provisioned latency meets them."""
        target = model.latency_at_cutoff() * 1.5
        count = best_effort_containers(model, workload, target)
        load = workload / count
        assert model.latency(load) <= target + 1e-6

    @given(piecewise_models(), st.floats(min_value=1.0, max_value=50_000.0))
    @settings(max_examples=100)
    def test_max_load_respected(self, model, workload):
        target = model.latency_at_cutoff() * 10.0
        count = best_effort_containers(model, workload, target)
        assert workload / count <= model.max_load + 1e-6


class TestSimulatorInvariants:
    @given(
        st.floats(min_value=500.0, max_value=20_000.0),
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=15, deadline=None)
    def test_conservation_and_latency_floor(self, rate, containers, seed):
        from repro.graphs import call
        from repro.simulator import (
            ClusterSimulator,
            SimulatedMicroservice,
            SimulationConfig,
        )

        spec = ServiceSpec("svc", DependencyGraph("svc", call("B")), 0.0, 1e9)
        sim = ClusterSimulator(
            [spec],
            {"B": SimulatedMicroservice("B", base_service_ms=4.0, threads=2)},
            containers={"B": containers},
            rates={"svc": rate},
            config=SimulationConfig(duration_min=0.5, warmup_min=0.0, seed=seed),
        )
        result = sim.run()
        # Drain mode: everything generated completes.
        assert result.completed["svc"] == result.generated["svc"]
        latencies = result.latencies("svc")
        if len(latencies):
            # Latency is never negative and includes some processing.
            assert float(latencies.min()) >= 0.0


class TestClusteringInvariants:
    @given(
        st.lists(
            st.lists(
                st.sampled_from(["a", "b", "c", "d", "e"]),
                min_size=1,
                max_size=4,
                unique=True,
            ),
            min_size=1,
            max_size=6,
        ),
        st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_partition_and_weight_mass(self, chains, threshold):
        from repro.graphs.clustering import cluster_graphs
        from repro.graphs import call

        variants = []
        for chain in chains:
            node = call(chain[-1])
            for name in reversed(chain[:-1]):
                node = call(name, stages=[[node]])
            variants.append(DependencyGraph("svc", node))
        classes = cluster_graphs(variants, similarity_threshold=threshold)
        members = sorted(i for cls in classes for i in cls.members)
        assert members == list(range(len(variants)))  # exact partition
        assert sum(cls.weight for cls in classes) == pytest.approx(1.0)
