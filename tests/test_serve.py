"""Tests for the live observability plane (:mod:`repro.telemetry.serve`).

The hard bar: with the HTTP server attached to a live run — and clients
hammering every endpoint *while the event loop is executing* — the
engine's golden fingerprint stays bit-identical to a server-less run.
Mid-run requests are driven from a DES event scheduled inside the run
(the simulation thread issues HTTP calls; the ThreadingHTTPServer
answers them from its own worker threads), so the "while in flight"
claim is exercised for real, not approximated.
"""

import json
import threading
import urllib.error
import urllib.request
from types import SimpleNamespace
from urllib.parse import quote

import pytest

from repro.core.model import ServiceSpec
from repro.graphs import DependencyGraph, call
from repro.simulator import (
    ClusterSimulator,
    SimulatedMicroservice,
    SimulationConfig,
)
from repro.telemetry import (
    ObservabilityServer,
    RunSource,
    StructuredLogger,
    TelemetryConfig,
    TelemetrySink,
    TimeSeriesConfig,
    TimeSeriesStore,
    build_run_report,
    load_replay_source,
    parse_prometheus_text,
    render_top,
    write_run_report,
)
from tests.test_determinism_golden import GOLDEN_SHARED, fingerprint

_MS = 60_000.0


def _get(url, timeout=10):
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return response.status, response.read().decode("utf-8")


def _get_json(url):
    status, body = _get(url)
    assert status == 200, (url, status)
    return json.loads(body)


def _shared_simulator(sink):
    """The golden shared-fanout topology with a telemetry sink attached."""
    s1 = ServiceSpec(
        "s1",
        DependencyGraph("s1", call("F", stages=[[call("P"), call("Q")]])),
        0.0,
        300.0,
    )
    s2 = ServiceSpec(
        "s2", DependencyGraph("s2", call("G", stages=[[call("P")]])), 0.0, 300.0
    )
    return ClusterSimulator(
        [s1, s2],
        {
            "F": SimulatedMicroservice("F", 4.0, 2),
            "G": SimulatedMicroservice("G", 6.0, 2),
            "P": SimulatedMicroservice("P", 3.0, 4),
            "Q": SimulatedMicroservice("Q", 5.0, 2),
        },
        containers={"F": 2, "G": 2, "P": 2, "Q": 2},
        rates={"s1": 9_000.0, "s2": 6_000.0},
        config=SimulationConfig(duration_min=0.5, warmup_min=0.1, seed=42),
        telemetry=sink,
    )


@pytest.fixture(scope="module")
def shared_run():
    """One served golden run, probed mid-flight; server kept alive."""
    sink = TelemetrySink(
        config=TelemetryConfig(window_min=0.25, spans=False, max_traces=0),
        timeseries=TimeSeriesStore(TimeSeriesConfig(scrape_interval_min=0.1)),
    )
    simulator = _shared_simulator(sink)
    source = RunSource(
        sink,
        simulator=simulator,
        specs=simulator.services,
        meta={"app": "shared-fanout", "seed": 42},
    )
    server = ObservabilityServer(source, poll_interval_s=0.02).start()
    midrun = {}

    def probe(now_ms):
        base = server.url
        midrun["now_ms"] = now_ms
        midrun["healthz"] = _get_json(base + "/healthz")
        midrun["readyz"] = _get_json(base + "/readyz")
        midrun["metrics"] = _get(base + "/metrics")
        midrun["summary"] = _get_json(base + "/api/summary")
        midrun["alerts"] = _get_json(base + "/api/alerts?limit=5")
        midrun["decisions"] = _get_json(base + "/api/decisions")
        midrun["query"] = _get_json(
            base
            + "/api/query?expr="
            + quote('rate(requests_completed[0.2m])')
        )
        midrun["series"] = _get_json(base + "/api/series?name=queue_depth")
        midrun["dashboard"] = _get(base + "/dashboard")
        midrun["index"] = _get(base + "/")

    simulator.events.schedule(0.3 * _MS, probe)
    result = simulator.run()
    source.mark_complete(result)
    yield SimpleNamespace(
        server=server,
        source=source,
        sink=sink,
        result=result,
        midrun=midrun,
    )
    server.stop()


class TestLiveEndpoints:
    def test_probe_ran_midrun(self, shared_run):
        # The DES event fired inside the run window, not after it.
        assert shared_run.midrun["now_ms"] == pytest.approx(0.3 * _MS)

    def test_golden_fingerprint_with_server_attached(self, shared_run):
        """Serving mid-run must not shift a single RNG draw or event."""
        assert fingerprint(
            shared_run.result, ["s1", "s2"], ["F", "G", "P", "Q"]
        ) == GOLDEN_SHARED

    def test_health_and_ready(self, shared_run):
        assert shared_run.midrun["healthz"] == {"status": "ok", "mode": "live"}
        assert shared_run.midrun["readyz"]["ready"] is True

    def test_metrics_exposition_parses_midrun(self, shared_run):
        status, text = shared_run.midrun["metrics"]
        assert status == 200
        parsed = parse_prometheus_text(text)
        assert parsed["requests_completed_total"]["value"] > 0

    def test_summary_schema_midrun(self, shared_run):
        summary = shared_run.midrun["summary"]
        assert summary["schema"] == 1
        progress = summary["progress"]
        assert progress["mode"] == "live"
        assert progress["complete"] is False
        assert 0.0 < progress["now_min"] < progress["duration_min"]
        assert 0.0 < progress["progress_pct"] < 100.0
        assert progress["events_processed"] > 0
        services = {row["service"]: row for row in summary["services"]}
        assert set(services) == {"s1", "s2"}
        for row in services.values():
            assert row["sla_ms"] == 300.0
            assert row["completed"] > 0
            assert row["p95_ms"] >= row["p50_ms"]
            assert 0.0 <= row["miss_rate"] <= 1.0
        assert summary["containers"] == {"F": 2, "G": 2, "P": 2, "Q": 2}

    def test_query_endpoint_midrun(self, shared_run):
        query = shared_run.midrun["query"]
        assert query["results"], "rate() over the completed counter is live"
        assert query["results"][0]["name"] == "requests_completed"
        assert query["results"][0]["value"] > 0

    def test_series_endpoint_midrun(self, shared_run):
        series = shared_run.midrun["series"]["series"]
        assert len(series) == 1
        assert series[0]["name"] == "queue_depth"
        assert series[0]["points"]

    def test_alert_and_decision_tails_midrun(self, shared_run):
        alerts = shared_run.midrun["alerts"]
        assert set(alerts) == {"sla", "error_budget", "rules"}
        decisions = shared_run.midrun["decisions"]
        assert decisions["total"] == len(decisions["decisions"])

    def test_dashboard_fragment_and_live_shell(self, shared_run):
        status, body = shared_run.midrun["dashboard"]
        assert status == 200
        assert "viz-summary" in body or "meta" in body
        status, index = shared_run.midrun["index"]
        assert status == 200
        # The live shell (and only the live shell) carries the SSE script.
        assert "EventSource" in index

    def test_sse_stream_after_completion(self, shared_run):
        status, body = _get(shared_run.server.url + "/events?limit=3")
        assert status == 200
        assert "event: progress" in body
        assert "event: complete" in body
        payload = json.loads(
            [l for l in body.splitlines() if l.startswith("data: ")][0][6:]
        )
        assert payload["mode"] == "live"

    def test_bad_query_returns_400(self, shared_run):
        with pytest.raises(urllib.error.HTTPError) as err:
            _get(shared_run.server.url + "/api/query?expr=" + quote("bogus("))
        assert err.value.code == 400

    def test_missing_expr_returns_400(self, shared_run):
        with pytest.raises(urllib.error.HTTPError) as err:
            _get(shared_run.server.url + "/api/query")
        assert err.value.code == 400

    def test_unknown_path_returns_404(self, shared_run):
        with pytest.raises(urllib.error.HTTPError) as err:
            _get(shared_run.server.url + "/nope")
        assert err.value.code == 404

    def test_summary_after_completion(self, shared_run):
        summary = _get_json(shared_run.server.url + "/api/summary")
        progress = summary["progress"]
        assert progress["complete"] is True
        assert progress["now_min"] == progress["duration_min"]
        assert progress["completed"] == sum(
            shared_run.result.completed.values()
        )


class TestShutdownHandshake:
    def test_post_shutdown_unblocks_wait(self, shared_run):
        # A second server over the same source: POST /shutdown must
        # resolve wait_for_shutdown() promptly and tear the server down.
        server = ObservabilityServer(shared_run.source).start()
        status, body = _get(server.url + "/healthz")
        assert status == 200
        waiter = threading.Thread(target=server.wait_for_shutdown, daemon=True)
        waiter.start()
        request = urllib.request.Request(
            server.url + "/shutdown", method="POST"
        )
        with urllib.request.urlopen(request, timeout=10) as response:
            assert json.loads(response.read())["status"] == "shutting down"
        waiter.join(timeout=10)
        assert not waiter.is_alive()


class TestExemplars:
    def test_metrics_carry_trace_exemplars(self):
        """A trace-collecting run links histogram buckets to trace ids
        through the exposition, and the text round-trips."""
        sink = TelemetrySink(
            config=TelemetryConfig(window_min=0.25, max_traces=10, seed=1)
        )
        spec = ServiceSpec("svc", DependencyGraph("svc", call("B")), 0.0, 100.0)
        ClusterSimulator(
            [spec],
            {"B": SimulatedMicroservice("B", base_service_ms=5.0, threads=4)},
            containers={"B": 1},
            rates={"svc": 6_000.0},
            config=SimulationConfig(duration_min=0.3, warmup_min=0.05, seed=3),
            telemetry=sink,
        ).run()
        source = RunSource(sink, meta={})
        text = source.expose_metrics()
        assert '# {trace_id="svc-t' in text
        parsed = parse_prometheus_text(text)
        family = next(n for n in parsed if n.startswith("e2e_latency_ms"))
        exemplars = parsed[family]["exemplars"]
        assert exemplars
        le, exemplar = next(iter(exemplars.items()))
        assert exemplar["trace_id"].startswith("svc-t")
        assert exemplar["value"] > 0


class TestReplay:
    @pytest.fixture(scope="class")
    def replay(self, shared_run, tmp_path_factory):
        report = build_run_report(
            shared_run.sink, shared_run.result, specs=None
        )
        path = tmp_path_factory.mktemp("replay") / "run.json"
        write_run_report(report, str(path))
        source = load_replay_source(str(path))
        server = ObservabilityServer(source).start()
        yield SimpleNamespace(
            source=source, server=server, report=report, path=path
        )
        server.stop()

    def test_all_endpoints_answer(self, replay):
        for path in (
            "/healthz",
            "/readyz",
            "/metrics",
            "/api/summary",
            "/api/alerts",
            "/api/decisions",
            "/api/query?expr=requests_completed",
            "/api/series?name=queue_depth",
            "/dashboard",
            "/",
        ):
            status, _ = _get(replay.server.url + path)
            assert status == 200, path

    def test_replay_summary_matches_live(self, replay, shared_run):
        summary = _get_json(replay.server.url + "/api/summary")
        progress = summary["progress"]
        assert progress["mode"] == "replay"
        assert progress["complete"] is True
        assert (
            progress["events_processed"]
            == shared_run.result.events_processed
        )
        live = {
            row["service"]: row
            for row in _get_json(shared_run.server.url + "/api/summary")[
                "services"
            ]
        }
        for row in summary["services"]:
            # Snapshot percentiles are exact: replay == live, bit for bit.
            assert row["p95_ms"] == live[row["service"]]["p95_ms"]
            assert row["completed"] == live[row["service"]]["completed"]

    def test_replay_metrics_parse(self, replay):
        status, text = _get(replay.server.url + "/metrics")
        parsed = parse_prometheus_text(text)
        assert parsed["requests_completed_total"]["value"] > 0
        assert any(n.startswith("e2e_latency_ms") for n in parsed)

    def test_replay_tsdb_queries(self, replay):
        query = _get_json(
            replay.server.url
            + "/api/query?expr="
            + quote('queue_depth')
        )
        assert query["results"]

    def test_replay_index_is_script_free(self, replay):
        _, html = _get(replay.server.url + "/")
        assert "<script" not in html

    def test_rejects_non_report_json(self, tmp_path):
        bogus = tmp_path / "bogus.json"
        bogus.write_text('{"schema": 99}')
        with pytest.raises(ValueError, match="schema"):
            load_replay_source(str(bogus))


class TestRenderTop:
    def test_frame_contents(self, shared_run):
        summary = _get_json(shared_run.server.url + "/api/summary")
        frame = render_top(summary, clear=False)
        assert frame.startswith("repro top")
        assert "SERVICE" in frame and "P95" in frame and "SLA" in frame
        assert "s1" in frame and "s2" in frame
        assert "ALERTS:" in frame
        assert "\x1b[2J" not in frame

    def test_clear_prefix(self, shared_run):
        summary = _get_json(shared_run.server.url + "/api/summary")
        assert render_top(summary, clear=True).startswith("\x1b[2J\x1b[H")


class TestAccessLog:
    def test_server_logs_requests_with_run_id(self, shared_run):
        import io

        stream = io.StringIO()
        logger = StructuredLogger(fmt="json", run_id="test-run", stream=stream)
        server = ObservabilityServer(shared_run.source, logger=logger).start()
        _get(server.url + "/healthz")
        server.stop()
        lines = [
            json.loads(line)
            for line in stream.getvalue().splitlines()
            if line
        ]
        access = [l for l in lines if l["event"] == "http_access"]
        assert access, lines
        assert access[0]["run_id"] == "test-run"
        assert access[0]["actor"] == "serve"
        assert access[0]["path"] == "/healthz"
