"""HTML dashboard: data model correctness and self-containment."""

import re

import pytest

from repro.core import ErmsScaler
from repro.simulator.autoscaled import AutoscaleConfig, AutoscaledSimulation
from repro.simulator.simulation import SimulationConfig
from repro.telemetry import (
    TelemetryConfig,
    TelemetrySink,
    TimeSeriesConfig,
    TimeSeriesStore,
    dashboard_data,
    render_dashboard,
    write_dashboard,
)
from repro.workloads import social_network


@pytest.fixture(scope="module")
def instrumented_run():
    app = social_network()
    scheme = ErmsScaler()
    profiles = app.analytic_profiles(1.0)
    specs = app.with_workloads(
        {s.name: 20_000.0 for s in app.services}, sla=200.0
    )
    allocation = scheme.scale(specs, profiles)
    store = TimeSeriesStore(TimeSeriesConfig(scrape_interval_min=0.25))
    sink = TelemetrySink(
        config=TelemetryConfig(window_min=0.5, spans=False, max_traces=0),
        timeseries=store,
    )
    simulation = AutoscaledSimulation(
        specs,
        app.simulated,
        scheme,
        profiles,
        rates={spec.name: 20_000.0 for spec in specs},
        config=SimulationConfig(duration_min=1.5, warmup_min=0.5, seed=3),
        autoscale=AutoscaleConfig(interval_min=0.5),
        telemetry=sink,
    )
    outcome = simulation.run()
    return sink, outcome.simulation, specs, allocation


class TestDashboardData:
    def test_miss_series_matches_violation_rate_by_window(
        self, instrumented_run
    ):
        """The plotted per-window miss rate equals the simulator's own
        post-hoc ``violation_rate_by_window`` — window for window."""
        sink, result, specs, _ = instrumented_run
        data = dashboard_data(sink, result, specs=specs)
        for spec in specs:
            entry = data["services"][spec.name]
            expected = result.violation_rate_by_window(
                spec.name, spec.sla, window_min=0.5, include_warmup=True
            )
            plotted = {w["window"]: w["miss_rate"] for w in entry["windows"]}
            assert set(plotted) == set(expected)
            for window, rate in expected.items():
                # the dashboard rounds to 6 decimals for the JSON model
                assert plotted[window] == pytest.approx(rate, abs=5e-7)

    def test_services_carry_latency_series_and_sla(self, instrumented_run):
        sink, result, specs, _ = instrumented_run
        data = dashboard_data(sink, result, specs=specs)
        for spec in specs:
            entry = data["services"][spec.name]
            assert entry["sla_ms"] == spec.sla
            for stat in ("p50", "p95", "p99"):
                assert entry["latency"][stat], stat

    def test_container_timelines_reconstruct_decision_log(
        self, instrumented_run
    ):
        sink, result, _, _ = instrumented_run
        data = dashboard_data(sink, result)
        assert set(data["containers"]) == set(result.containers)
        for name, points in data["containers"].items():
            # final plotted value is the live simulator's final count
            assert points[-1][1] == float(result.containers[name])
            # time-ordered from 0 to the run duration
            times = [t for t, _ in points]
            assert times == sorted(times)
            assert times[0] == 0.0

    def test_summary_counts(self, instrumented_run):
        sink, result, specs, _ = instrumented_run
        data = dashboard_data(sink, result, specs=specs)
        summary = data["summary"]
        assert summary["completed"] == sum(result.completed.values())
        assert summary["events_processed"] == result.events_processed
        assert summary["tsdb_samples"] == sink.timeseries.total_samples
        assert summary["sla_alerts"] == len(sink.monitor.alerts)


class TestDashboardHtml:
    def test_self_contained(self, instrumented_run, tmp_path):
        sink, result, specs, allocation = instrumented_run
        data = dashboard_data(
            sink, result, specs=specs, targets=allocation.targets,
            meta={"app": "social-network", "seed": 3},
        )
        path = tmp_path / "dash.html"
        html = write_dashboard(data, str(path))
        assert path.read_text() == html
        # no external references of any kind, no scripts
        assert "http" not in html
        assert "<script" not in html
        assert "@import" not in html and "url(" not in html
        # real charts made it in
        assert html.count("<svg") >= 2 * len(specs)
        assert "<path" in html
        # every chart ships its table view; dark mode is declared
        assert html.count("<details") >= 2 * len(specs)
        assert "prefers-color-scheme: dark" in html

    def test_geometry_stays_inside_viewbox(self, instrumented_run):
        sink, result, specs, _ = instrumented_run
        html = render_dashboard(dashboard_data(sink, result, specs=specs))
        assert "NaN" not in html and "Infinity" not in html
        xs = [float(m) for m in re.findall(r'(?:cx|x1|x2)="(-?[\d.]+)"', html)]
        assert xs and all(-1 <= x <= 721 for x in xs)

    def test_labels_are_escaped(self):
        data = {
            "meta": {"title": "<b>run</b>"},
            "summary": {"duration_min": 1.0},
            "services": {},
            "targets": {},
            "breakers": [],
            "containers": {},
            "chaos": None,
            "alerts": {},
        }
        html = render_dashboard(data)
        assert "<b>run</b>" not in html
        assert "&lt;b&gt;run&lt;/b&gt;" in html

    def test_cli_dashboard_writes_html(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "dash.html"
        code = main([
            "dashboard", "--duration", "1.0", "--workload", "8000",
            "--seed", "1", "--output", str(out),
        ])
        assert code == 0
        assert "wrote dashboard" in capsys.readouterr().out
        html = out.read_text()
        assert "http" not in html
        assert "<svg" in html
