"""Tests for repro.simulator.autoscaled: the in-DES control loop."""

import numpy as np
import pytest

from repro.core import ErmsScaler, ServiceSpec
from repro.graphs import DependencyGraph, call
from repro.simulator import (
    AutoscaleConfig,
    AutoscaledSimulation,
    SimulatedMicroservice,
    SimulationConfig,
)
from repro.workloads import HoltPredictor, StaticRate, SteppedRate, analytic_profile


def chain_setup(sla=200.0):
    spec = ServiceSpec(
        "svc",
        DependencyGraph("svc", call("A", stages=[[call("B")]])),
        workload=0.0,
        sla=sla,
    )
    simulated = {
        "A": SimulatedMicroservice("A", base_service_ms=10.0, threads=2),
        "B": SimulatedMicroservice("B", base_service_ms=5.0, threads=2),
    }
    profiles = {
        "A": analytic_profile("A", 10.0, 2),
        "B": analytic_profile("B", 5.0, 2),
    }
    return spec, simulated, profiles


class TestAutoscaleConfig:
    def test_validation(self):
        with pytest.raises(ValueError, match="interval_min"):
            AutoscaleConfig(interval_min=0.0)
        with pytest.raises(ValueError, match="startup_delay_ms"):
            AutoscaleConfig(startup_delay_ms=-1.0)


class TestScaleContainerCount:
    def _simulator(self, containers=2):
        from repro.simulator import ClusterSimulator

        spec, simulated, _ = chain_setup()
        return ClusterSimulator(
            [spec],
            simulated,
            containers={"A": containers, "B": 1},
            rates={"svc": 1000.0},
            config=SimulationConfig(duration_min=0.5, warmup_min=0.0, seed=1),
        )

    def test_scale_up_immediate(self):
        sim = self._simulator()
        sim.scale_container_count("A", 5)
        assert sim.container_count("A") == 5

    def test_scale_up_with_delay_joins_later(self):
        sim = self._simulator()
        sim.scale_container_count("A", 4, startup_delay_ms=1000.0)
        assert sim.container_count("A") == 2  # not started yet
        sim.events.run_until(1500.0)
        assert sim.container_count("A") == 4

    def test_scale_down(self):
        sim = self._simulator(containers=4)
        sim.scale_container_count("A", 2)
        assert sim.container_count("A") == 2

    def test_never_below_one(self):
        sim = self._simulator(containers=2)
        sim.scale_container_count("A", 1)
        assert sim.container_count("A") == 1
        with pytest.raises(ValueError, match="target"):
            sim.scale_container_count("A", 0)

    def test_no_requests_lost_across_scaling(self):
        """Scaling up and down mid-run drops no requests."""
        spec, simulated, _ = chain_setup()
        from repro.simulator import ClusterSimulator

        sim = ClusterSimulator(
            [spec],
            simulated,
            containers={"A": 3, "B": 2},
            rates={"svc": 8000.0},
            config=SimulationConfig(duration_min=1.0, warmup_min=0.0, seed=3),
        )
        sim.events.schedule(20_000.0, lambda t: sim.scale_container_count("A", 1))
        sim.events.schedule(40_000.0, lambda t: sim.scale_container_count("A", 4))
        result = sim.run()
        assert result.completed["svc"] == result.generated["svc"]


class TestAutoscaledSimulation:
    def test_tracks_load_step(self):
        spec, simulated, profiles = chain_setup()
        rate = SteppedRate(((0.0, 3_000.0), (2.0, 9_000.0)))
        sim = AutoscaledSimulation(
            [spec],
            simulated,
            ErmsScaler(),
            profiles,
            rates={"svc": rate},
            config=SimulationConfig(duration_min=5.0, warmup_min=0.0, seed=2),
            autoscale=AutoscaleConfig(interval_min=1.0, startup_delay_ms=1_000.0),
        )
        result = sim.run()
        assert result.scaling_events  # decisions were made
        # Observed rates reflect the step.
        early = result.observed_rates[0][1]["svc"]
        late = result.observed_rates[-1][1]["svc"]
        assert late > 2.0 * early
        # All requests complete despite scaling churn.
        assert (
            result.simulation.completed["svc"]
            == result.simulation.generated["svc"]
        )

    def test_constant_load_stable_allocation(self):
        spec, simulated, profiles = chain_setup()
        sim = AutoscaledSimulation(
            [spec],
            simulated,
            ErmsScaler(),
            profiles,
            rates={"svc": StaticRate(6_000.0)},
            config=SimulationConfig(duration_min=4.0, warmup_min=1.0, seed=4),
            autoscale=AutoscaleConfig(interval_min=1.0, startup_delay_ms=0.0),
        )
        result = sim.run()
        series = result.container_series()
        assert max(series) - min(series) <= 1  # no thrash on steady load
        assert result.simulation.tail_latency("svc") < spec.sla

    def test_predictor_is_consulted(self):
        spec, simulated, profiles = chain_setup()
        created = []

        def factory():
            predictor = HoltPredictor()
            created.append(predictor)
            return predictor

        sim = AutoscaledSimulation(
            [spec],
            simulated,
            ErmsScaler(),
            profiles,
            rates={"svc": StaticRate(3_000.0)},
            config=SimulationConfig(duration_min=2.0, warmup_min=0.0, seed=5),
            autoscale=AutoscaleConfig(interval_min=1.0),
            predictor_factory=factory,
        )
        sim.run()
        assert len(created) == 1
        # The predictor saw observations (its state is initialized).
        assert created[0].predict() >= 0.0

    def test_smaller_startup_delay_recovers_faster(self):
        """Ablation: cold-start latency worsens ramp transients."""
        spec, simulated, profiles = chain_setup()
        rate = SteppedRate(((0.0, 4_000.0), (2.0, 10_000.0)))

        def run(delay_ms):
            sim = AutoscaledSimulation(
                [spec],
                simulated,
                ErmsScaler(),
                profiles,
                rates={"svc": rate},
                config=SimulationConfig(duration_min=6.0, warmup_min=0.0, seed=6),
                autoscale=AutoscaleConfig(
                    interval_min=1.0, startup_delay_ms=delay_ms
                ),
            )
            result = sim.run()
            ramp = [
                latency
                for minute, latency in result.simulation.end_to_end["svc"]
                if 2.0 <= minute < 5.0
            ]
            return float(np.percentile(ramp, 95))

        fast = run(0.0)
        slow = run(30_000.0)
        assert fast <= slow


class TestAutoscaledSharedServices:
    def test_priority_scheduling_survives_rescaling(self):
        """Shared services keep δ-priority queues as containers scale."""
        from repro.graphs import DependencyGraph
        from repro.workloads import StaticRate

        specs = [
            ServiceSpec(
                "hot",
                DependencyGraph("hot", call("U", stages=[[call("P")]])),
                workload=0.0,
                sla=250.0,
            ),
            ServiceSpec(
                "cold",
                DependencyGraph("cold", call("H", stages=[[call("P")]])),
                workload=0.0,
                sla=400.0,
            ),
        ]
        simulated = {
            "U": SimulatedMicroservice("U", base_service_ms=12.0, threads=1),
            "H": SimulatedMicroservice("H", base_service_ms=4.0, threads=2),
            "P": SimulatedMicroservice("P", base_service_ms=5.0, threads=2),
        }
        profiles = {
            "U": analytic_profile("U", 12.0, 1),
            "H": analytic_profile("H", 4.0, 2),
            "P": analytic_profile("P", 5.0, 2),
        }
        sim = AutoscaledSimulation(
            specs,
            simulated,
            ErmsScaler(),
            profiles,
            rates={"hot": StaticRate(4_000.0), "cold": StaticRate(4_000.0)},
            config=SimulationConfig(
                duration_min=3.0, warmup_min=0.5, seed=9, scheduling="priority"
            ),
            autoscale=AutoscaleConfig(interval_min=1.0),
        )
        result = sim.run()
        assert result.simulation.completed["hot"] > 0
        assert result.simulation.completed["cold"] > 0
        assert result.simulation.tail_latency("hot") < 250.0

    def test_infeasible_window_keeps_previous_deployment(self):
        spec = ServiceSpec(
            "svc",
            DependencyGraph("svc", call("A")),
            workload=0.0,
            sla=25.0,  # feasible at multiplier 1 (floor 2*10=20ms)
        )
        simulated = {"A": SimulatedMicroservice("A", base_service_ms=10.0, threads=2)}
        profiles = {"A": analytic_profile("A", 10.0, 2)}

        sim = AutoscaledSimulation(
            [spec],
            simulated,
            ErmsScaler(),
            profiles,
            rates={"svc": StaticRate(2_000.0)},
            config=SimulationConfig(duration_min=2.0, warmup_min=0.0, seed=10),
            autoscale=AutoscaleConfig(interval_min=1.0),
        )
        # Sabotage: make the SLA infeasible for subsequent windows.
        sim.specs = [
            ServiceSpec("svc", spec.graph, workload=0.0, sla=5.0)
        ]
        result = sim.run()
        # No scaling events recorded (every rescale raised), but the
        # initial deployment keeps serving.
        assert result.scaling_events == []
        assert result.simulation.completed["svc"] > 0
