"""Shared fixtures and factories for the test suite."""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

from repro.core import (
    ContainerSpec,
    LatencySegment,
    MicroserviceProfile,
    PiecewiseLatencyModel,
    ServiceSpec,
)
from repro.graphs import DependencyGraph, call


def make_profile(
    name: str,
    slope: float,
    intercept: float,
    resource: float = 1.0,
    cutoff: float = 50.0,
    low_slope_ratio: float = 0.3,
) -> MicroserviceProfile:
    """A realistic two-segment profile.

    The low segment shares the intercept but has a gentler slope (latency
    nearly flat before the cut-off, paper Fig. 3); the high segment is the
    steep post-cutoff line.
    """
    return MicroserviceProfile(
        name=name,
        model=PiecewiseLatencyModel(
            low=LatencySegment(slope * low_slope_ratio, intercept),
            high=LatencySegment(slope, intercept),
            cutoff=cutoff,
        ),
        resource_demand=resource,
        container=ContainerSpec(cpu=0.1, memory_mb=200.0),
    )


def make_profiles(
    entries: Iterable[Tuple[str, float, float]]
) -> Dict[str, MicroserviceProfile]:
    """Profiles from (name, slope, intercept) triples."""
    return {name: make_profile(name, a, b) for name, a, b in entries}


def fig1_graph() -> DependencyGraph:
    """The dependency graph of paper Fig. 1: T -> (Url || U) -> C."""
    return DependencyGraph(
        service="fig1",
        root=call("T", stages=[[call("Url"), call("U")], [call("C")]]),
    )


def chain_graph(names: Iterable[str], service: str = "chain") -> DependencyGraph:
    """A purely sequential graph: each microservice calls the next."""
    names = list(names)
    node = call(names[-1])
    for name in reversed(names[:-1]):
        node = call(name, stages=[[node]])
    return DependencyGraph(service=service, root=node)


def fig1_service(workload: float = 2000.0, sla: float = 200.0) -> ServiceSpec:
    return ServiceSpec("fig1", fig1_graph(), workload=workload, sla=sla)


FIG1_PARAMS = [("T", 0.5, 2.0), ("Url", 1.0, 3.0), ("U", 2.0, 4.0), ("C", 0.8, 1.0)]
