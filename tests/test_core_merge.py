"""Tests for repro.core.merge: Eqs. 6-12 merge rules and target distribution.

Includes property-based tests of the paper's structural invariants:

* sequential merge preserves sqrt(a*R) additively (the reason hierarchical
  Eq. 5 splitting matches the flat allocation);
* merge + distribute is consistent: summing the distributed targets through
  the graph structure reproduces the SLA exactly.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    LatencySegment,
    MergeKind,
    VirtualParams,
    distribute_targets,
    merge_graph,
    parallel_merge,
    sequential_merge,
)
from repro.core.merge import leaf_params_from_profiles
from repro.graphs import DependencyGraph, call

from tests.helpers import fig1_graph, make_profiles, FIG1_PARAMS

positive = st.floats(min_value=0.01, max_value=100.0, allow_nan=False)
params_strategy = st.builds(
    VirtualParams,
    slope=positive,
    intercept=st.floats(min_value=0.0, max_value=50.0),
    resource=positive,
)


class TestSequentialMerge:
    def test_intercepts_add(self):
        p1 = VirtualParams(1.0, 2.0, 1.0)
        p2 = VirtualParams(2.0, 3.0, 1.0)
        assert sequential_merge(p1, p2).intercept == pytest.approx(5.0)

    def test_equal_nodes(self):
        p = VirtualParams(1.0, 1.0, 1.0)
        merged = sequential_merge(p, p)
        # s = 2*sqrt(aR) = 2, t = 2*sqrt(a/R) = 2 -> slope 4, resource 1
        assert merged.slope == pytest.approx(4.0)
        assert merged.resource == pytest.approx(1.0)

    @given(params_strategy, params_strategy)
    @settings(max_examples=200)
    def test_key_additivity(self, p1, p2):
        """sqrt(a*R) of the merged node equals the sum of children keys."""
        merged = sequential_merge(p1, p2)
        assert merged.key == pytest.approx(p1.key + p2.key, rel=1e-9)

    @given(params_strategy, params_strategy, params_strategy)
    @settings(max_examples=100)
    def test_associativity_of_key(self, p1, p2, p3):
        left = sequential_merge(sequential_merge(p1, p2), p3)
        right = sequential_merge(p1, sequential_merge(p2, p3))
        assert left.key == pytest.approx(right.key, rel=1e-9)
        assert left.intercept == pytest.approx(right.intercept, rel=1e-9)

    @given(params_strategy, params_strategy)
    @settings(max_examples=100)
    def test_resource_cost_equivalence(self, p1, p2):
        """The virtual node reproduces the optimal chain cost (Eq. 6).

        For a chain under budget B (above intercepts), the optimal resource
        usage is gamma * (sum sqrt(a_i R_i))^2 / B; the merged node's
        a*R/(B) formula must agree.
        """
        merged = sequential_merge(p1, p2)
        budget = 10.0
        chain_cost = (p1.key + p2.key) ** 2 / budget
        merged_cost = merged.slope * merged.resource / budget
        assert merged_cost == pytest.approx(chain_cost, rel=1e-9)


class TestParallelMerge:
    def test_slopes_add_intercept_max(self):
        p1 = VirtualParams(1.0, 2.0, 1.0)
        p2 = VirtualParams(2.0, 5.0, 1.0)
        merged = parallel_merge(p1, p2)
        assert merged.slope == pytest.approx(3.0)
        assert merged.intercept == pytest.approx(5.0)

    @given(params_strategy, params_strategy)
    @settings(max_examples=200)
    def test_aggregate_aR_preserved(self, p1, p2):
        """a**R** equals a1R1 + a2R2 so parallel cost is preserved."""
        merged = parallel_merge(p1, p2)
        assert merged.slope * merged.resource == pytest.approx(
            p1.slope * p1.resource + p2.slope * p2.resource, rel=1e-9
        )

    @given(params_strategy, params_strategy)
    @settings(max_examples=100)
    def test_commutative(self, p1, p2):
        m12 = parallel_merge(p1, p2)
        m21 = parallel_merge(p2, p1)
        assert m12.slope == pytest.approx(m21.slope)
        assert m12.intercept == pytest.approx(m21.intercept)
        assert m12.resource == pytest.approx(m21.resource)


def _fig1_setup():
    graph = fig1_graph()
    profiles = make_profiles(FIG1_PARAMS)
    segments = {name: profiles[name].model.high for name in profiles}
    leaf_params = leaf_params_from_profiles(graph, profiles, segments)
    return graph, profiles, leaf_params


class TestMergeGraph:
    def test_fig1_merged_intercept_is_worst_path(self):
        graph, _, leaf_params = _fig1_setup()
        merged = merge_graph(graph, leaf_params)
        # T(2) + max(Url 3, U 4) + C(1) = 7
        assert merged.params.intercept == pytest.approx(7.0)

    def test_fig1_merge_tree_structure(self):
        graph, _, leaf_params = _fig1_setup()
        merged = merge_graph(graph, leaf_params)
        assert merged.kind is MergeKind.SEQUENTIAL
        assert merged.leaf_count() == 4

    def test_single_node_graph(self):
        graph = DependencyGraph("one", call("A"))
        profiles = make_profiles([("A", 1.0, 2.0)])
        segments = {"A": profiles["A"].model.high}
        merged = merge_graph(
            graph, leaf_params_from_profiles(graph, profiles, segments)
        )
        assert merged.kind is MergeKind.LEAF
        assert merged.params.intercept == pytest.approx(2.0)

    def test_fanout_scales_slope(self):
        graph = DependencyGraph(
            "fan", call("A", stages=[[call("B", calls_per_request=4.0)]])
        )
        profiles = make_profiles([("A", 1.0, 0.0), ("B", 1.0, 0.0)])
        segments = {n: profiles[n].model.high for n in profiles}
        leaf_params = leaf_params_from_profiles(graph, profiles, segments)
        b_node = graph.root.stages[0][0]
        assert leaf_params[id(b_node)].slope == pytest.approx(4.0)


class TestDistributeTargets:
    def test_targets_sum_to_sla_on_chain(self):
        graph = DependencyGraph(
            "chain", call("A", stages=[[call("B", stages=[[call("C")]])]])
        )
        profiles = make_profiles([("A", 1.0, 1.0), ("B", 2.0, 2.0), ("C", 0.5, 0.5)])
        segments = {n: profiles[n].model.high for n in profiles}
        leaf_params = leaf_params_from_profiles(graph, profiles, segments)
        merged = merge_graph(graph, leaf_params)
        targets = distribute_targets(merged, sla=100.0)
        assert sum(targets.values()) == pytest.approx(100.0)

    def test_chain_matches_flat_eq5(self):
        """Hierarchical splitting equals the closed form of Eq. 5."""
        names = ["A", "B", "C", "D"]
        entries = [("A", 1.0, 1.0), ("B", 2.0, 0.5), ("C", 0.3, 2.0), ("D", 4.0, 0.0)]
        graph = DependencyGraph(
            "chain",
            call("A", stages=[[call("B", stages=[[call("C", stages=[[call("D")]])]])]]),
        )
        profiles = make_profiles(entries)
        segments = {n: profiles[n].model.high for n in profiles}
        leaf_params = leaf_params_from_profiles(graph, profiles, segments)
        merged = merge_graph(graph, leaf_params)
        sla = 80.0
        targets = distribute_targets(merged, sla)
        by_name = {
            node.microservice: targets[id(node)] for node in graph.nodes()
        }
        # Flat Eq. 5
        keys = {n: math.sqrt(a * 1.0) for n, a, _ in entries}
        intercepts = {n: b for n, _, b in entries}
        budget = sla - sum(intercepts.values())
        total_key = sum(keys.values())
        for name in names:
            expected = keys[name] / total_key * budget + intercepts[name]
            assert by_name[name] == pytest.approx(expected, rel=1e-9)

    def test_parallel_children_get_equal_targets(self):
        graph = fig1_graph()
        profiles = make_profiles(FIG1_PARAMS)
        segments = {n: profiles[n].model.high for n in profiles}
        leaf_params = leaf_params_from_profiles(graph, profiles, segments)
        merged = merge_graph(graph, leaf_params)
        targets = distribute_targets(merged, sla=100.0)
        url_node, u_node = graph.root.stages[0]
        # Url and U are leaves of a parallel merge -> identical targets.
        assert targets[id(url_node)] == pytest.approx(targets[id(u_node)])

    def test_structural_latency_meets_sla_exactly(self):
        """Folding targets through the graph reproduces the SLA."""
        graph = fig1_graph()
        profiles = make_profiles(FIG1_PARAMS)
        segments = {n: profiles[n].model.high for n in profiles}
        leaf_params = leaf_params_from_profiles(graph, profiles, segments)
        merged = merge_graph(graph, leaf_params)
        sla = 123.0
        targets = distribute_targets(merged, sla)

        def respond(node):
            total = targets[id(node)]
            for stage in node.stages:
                total += max(respond(child) for child in stage)
            return total

        assert respond(graph.root) == pytest.approx(sla, rel=1e-9)

    @given(
        st.lists(
            st.tuples(positive, st.floats(min_value=0.0, max_value=5.0), positive),
            min_size=2,
            max_size=6,
        )
    )
    @settings(max_examples=100)
    def test_random_chain_targets_sum_to_sla(self, triples):
        node = None
        for index, _ in enumerate(reversed(triples)):
            name = f"M{len(triples) - 1 - index}"
            node = call(name, stages=[[node]] if node else [])
        graph = DependencyGraph("chain", node)
        leaf_params = {}
        for call_node, (a, b, r) in zip(graph.nodes(), triples):
            leaf_params[id(call_node)] = VirtualParams(a, b, r)
        merged = merge_graph(graph, leaf_params)
        sla = merged.params.intercept + 50.0
        targets = distribute_targets(merged, sla)
        assert sum(targets.values()) == pytest.approx(sla, rel=1e-6)
