"""Tests for the generalized (multi-resource) interference model (§9)."""

import numpy as np
import pytest

from repro.profiling import accuracy_score, fit_interference_model
from repro.profiling.extended import (
    ExtendedInterferenceModel,
    fit_extended_model,
)


def synthetic_samples(
    n=1440,
    mbw_weight=0.0,
    seed=0,
    noise=0.04,
):
    """Per-minute samples whose steep slope depends on cpu, mem, and
    (optionally) memory bandwidth pressure."""
    rng = np.random.default_rng(seed)
    hours = (n + 59) // 60
    levels = rng.uniform(0.1, 0.9, size=(hours, 3))  # cpu, mem, mbw
    loads = rng.uniform(1.0, 250.0, size=n)
    cpu = np.empty(n)
    mem = np.empty(n)
    mbw = np.empty(n)
    latencies = np.empty(n)
    for index in range(n):
        c, m, w = levels[index // 60]
        cpu[index], mem[index], mbw[index] = c, m, w
        sigma = max(150.0 * (1.0 - 0.4 * (c + m) / 2.0), 1.0)
        low_slope = 0.02 * c + 0.03 * m + 0.01
        load = loads[index]
        if load <= sigma:
            truth = low_slope * load + 2.0
        else:
            high_slope = 0.5 * c + 0.8 * m + mbw_weight * w + 0.1
            truth = (low_slope * sigma + 2.0) + high_slope * (load - sigma)
        latencies[index] = truth * rng.lognormal(0.0, noise)
    return loads, {"cpu": cpu, "memory": mem, "mbw": mbw}, latencies


def split(arrays, fraction=22 / 24):
    loads, resources, latencies = arrays
    k = int(len(loads) * fraction)
    train = (loads[:k], {n: v[:k] for n, v in resources.items()}, latencies[:k])
    test = (loads[k:], {n: v[k:] for n, v in resources.items()}, latencies[k:])
    return train, test


class TestFitExtendedModel:
    def test_matches_two_resource_fit_on_cpu_mem_data(self):
        """With cpu+mem-only ground truth, extended == base model quality."""
        train, test = split(synthetic_samples(mbw_weight=0.0, seed=1))
        extended = fit_extended_model(
            train[0], {"cpu": train[1]["cpu"], "memory": train[1]["memory"]},
            train[2],
        )
        base = fit_interference_model(
            train[0], train[1]["cpu"], train[1]["memory"], train[2]
        )
        acc_ext = accuracy_score(
            test[2],
            extended.predict(
                test[0], {"cpu": test[1]["cpu"], "memory": test[1]["memory"]}
            ),
        )
        acc_base = accuracy_score(
            test[2],
            base.predict(test[0], test[1]["cpu"], test[1]["memory"]),
        )
        assert acc_ext == pytest.approx(acc_base, abs=0.1)
        assert acc_ext > 0.75

    def test_extra_resource_pays_when_it_matters(self):
        """§9: when memory bandwidth drives latency, modeling it helps."""
        train, test = split(synthetic_samples(mbw_weight=1.5, seed=2))
        with_mbw = fit_extended_model(train[0], train[1], train[2])
        without = fit_extended_model(
            train[0],
            {"cpu": train[1]["cpu"], "memory": train[1]["memory"]},
            train[2],
        )
        acc_with = accuracy_score(
            test[2], with_mbw.predict(test[0], test[1])
        )
        acc_without = accuracy_score(
            test[2],
            without.predict(
                test[0], {"cpu": test[1]["cpu"], "memory": test[1]["memory"]}
            ),
        )
        assert acc_with > acc_without

    def test_model_at_conditions_on_vector(self):
        train, _ = split(synthetic_samples(mbw_weight=1.5, seed=3))
        model = fit_extended_model(train[0], train[1], train[2])
        calm = model.model_at({"cpu": 0.2, "memory": 0.2, "mbw": 0.2})
        busy = model.model_at({"cpu": 0.8, "memory": 0.8, "mbw": 0.8})
        assert busy.high.slope > calm.high.slope

    def test_missing_resources_default_to_zero(self):
        train, _ = split(synthetic_samples(seed=4))
        model = fit_extended_model(train[0], train[1], train[2])
        conditioned = model.model_at({"cpu": 0.5})  # memory, mbw default 0
        assert conditioned.low.slope > 0

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one resource"):
            fit_extended_model(np.ones(10), {}, np.ones(10))
        with pytest.raises(ValueError, match="same length"):
            fit_extended_model(
                np.ones(10), {"cpu": np.ones(9)}, np.ones(10)
            )
        with pytest.raises(ValueError, match="at least 8"):
            fit_extended_model(
                np.ones(4), {"cpu": np.ones(4)}, np.ones(4)
            )

    def test_resource_names_sorted_and_stable(self):
        train, _ = split(synthetic_samples(seed=5))
        model = fit_extended_model(train[0], train[1], train[2])
        assert model.resource_names == ("cpu", "mbw", "memory")
