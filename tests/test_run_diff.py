"""Cross-run regression diff: tolerances, verdicts, CLI exit codes."""

import copy
import json

import pytest

from repro.core.model import ServiceSpec
from repro.graphs import DependencyGraph, call
from repro.simulator import (
    ClusterSimulator,
    SimulatedMicroservice,
    SimulationConfig,
)
from repro.telemetry import (
    TelemetryConfig,
    TelemetrySink,
    build_run_report,
    diff_run_reports,
    write_run_report,
)
from repro.telemetry.diff import DiffTolerances, load_run_report


def make_report(seed=11):
    sink = TelemetrySink(
        config=TelemetryConfig(window_min=0.25, spans=False, max_traces=0)
    )
    spec = ServiceSpec("svc", DependencyGraph("svc", call("B")), 0.0, 40.0)
    result = ClusterSimulator(
        [spec],
        {"B": SimulatedMicroservice("B", base_service_ms=5.0, threads=4)},
        containers={"B": 2},
        rates={"svc": 10_000.0},
        config=SimulationConfig(duration_min=0.5, warmup_min=0.1, seed=seed),
        telemetry=sink,
    ).run()
    return build_run_report(sink, result, [spec])


class TestDiffVerdicts:
    def test_same_seed_diffs_to_zero_regressions(self):
        diff = diff_run_reports(make_report(seed=11), make_report(seed=11))
        assert diff.verdict == "ok"
        assert not diff.regressions
        assert not diff.improvements
        assert all(row.delta in (None, 0.0) for row in diff.rows)

    def test_p95_regression_detected(self):
        a = make_report()
        b = copy.deepcopy(a)
        b["services"]["svc"]["p95_ms"] = a["services"]["svc"]["p95_ms"] * 1.5
        diff = diff_run_reports(a, b)
        assert diff.verdict == "regression"
        assert any(
            r.metric == "p95_ms" and r.verdict == "regression"
            for r in diff.regressions
        )

    def test_p95_improvement_detected(self):
        a = make_report()
        b = copy.deepcopy(a)
        b["services"]["svc"]["p95_ms"] = a["services"]["svc"]["p95_ms"] * 0.5
        diff = diff_run_reports(a, b)
        assert diff.verdict == "ok"
        assert any(r.metric == "p95_ms" for r in diff.improvements)

    def test_drift_inside_tolerance_is_ok(self):
        a = make_report()
        b = copy.deepcopy(a)
        b["services"]["svc"]["p95_ms"] = a["services"]["svc"]["p95_ms"] * 1.03
        assert diff_run_reports(a, b).verdict == "ok"
        tight = DiffTolerances(p95_pct=1.0)
        assert diff_run_reports(a, b, tight).verdict == "regression"

    def test_missing_service_is_regression(self):
        a = make_report()
        b = copy.deepcopy(a)
        del b["services"]["svc"]
        diff = diff_run_reports(a, b)
        assert any(
            r.metric == "present" and r.verdict == "regression"
            for r in diff.rows
        )

    def test_new_sla_alerts_are_regression(self):
        a = make_report()
        b = copy.deepcopy(a)
        b["alerts"] = list(b.get("alerts", [])) + [{"service": "svc"}]
        diff = diff_run_reports(a, b)
        assert any(r.metric == "sla_alerts" for r in diff.regressions)

    def test_completed_drop_is_regression(self):
        a = make_report()
        b = copy.deepcopy(a)
        b["services"]["svc"]["completed"] = int(
            a["services"]["svc"]["completed"] * 0.9
        )
        diff = diff_run_reports(a, b)
        assert any(r.metric == "completed" for r in diff.regressions)


class TestDiffIO:
    def test_load_rejects_unknown_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": 99}))
        with pytest.raises(ValueError):
            load_run_report(str(path))

    def test_cli_diff_same_seed_exits_zero(self, tmp_path, capsys):
        from repro.cli import main

        a, b = tmp_path / "a.json", tmp_path / "b.json"
        write_run_report(make_report(seed=11), str(a))
        write_run_report(make_report(seed=11), str(b))
        code = main(["report", "--diff", str(a), str(b)])
        out = capsys.readouterr().out
        assert code == 0
        assert "verdict: ok" in out

    def test_cli_diff_regression_exits_one(self, tmp_path, capsys):
        from repro.cli import main

        report_a = make_report()
        report_b = copy.deepcopy(report_a)
        report_b["services"]["svc"]["p95_ms"] *= 2.0
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        write_run_report(report_a, str(a))
        write_run_report(report_b, str(b))
        code = main(["report", "--diff", str(a), str(b)])
        out = capsys.readouterr().out
        assert code == 1
        assert "verdict: regression" in out
        assert "p95_ms" in out
