"""Tests for span serialization and the simulator-to-metrics bridge."""

import numpy as np
import pytest

from repro.core.model import ServiceSpec
from repro.graphs import DependencyGraph, call
from repro.profiling import fit_piecewise
from repro.simulator import (
    ClusterSimulator,
    SimulatedMicroservice,
    SimulationConfig,
)
from repro.tracing import (
    TracingCoordinator,
    dump_traces,
    load_traces,
    synthesize_trace,
    trace_from_dict,
    trace_to_dict,
)

from tests.helpers import fig1_graph


LATENCIES = {"T": 10.0, "Url": 6.0, "U": 8.0, "C": 4.0}


class TestTraceSerialization:
    def test_round_trip_preserves_structure(self):
        trace = synthesize_trace(fig1_graph(), LATENCIES)
        rebuilt = trace_from_dict(trace_to_dict(trace))
        assert rebuilt.trace_id == trace.trace_id
        assert rebuilt.service == trace.service
        assert len(rebuilt.spans) == len(trace.spans)
        assert rebuilt.end_to_end_latency() == pytest.approx(
            trace.end_to_end_latency(), abs=0.01
        )

    def test_round_trip_supports_extraction(self):
        trace = synthesize_trace(fig1_graph(), LATENCIES)
        coordinator = TracingCoordinator()
        coordinator.offer(trace_from_dict(trace_to_dict(trace)))
        graph = coordinator.extract_graph("fig1")
        assert set(graph.critical_paths()) == set(fig1_graph().critical_paths())

    def test_microsecond_precision(self):
        trace = synthesize_trace(fig1_graph(), {"T": 0.1234, "Url": 1.0, "U": 1.0, "C": 1.0})
        rebuilt = trace_from_dict(trace_to_dict(trace))
        # Jaeger stores microseconds; sub-microsecond detail is rounded.
        for original, restored in zip(trace.spans, rebuilt.spans):
            assert restored.duration == pytest.approx(original.duration, abs=0.002)

    def test_dump_and_load(self, tmp_path):
        traces = [
            synthesize_trace(fig1_graph(), LATENCIES, trace_id=f"t{i}")
            for i in range(5)
        ]
        path = tmp_path / "traces.jsonl"
        assert dump_traces(traces, str(path)) == 5
        loaded = load_traces(str(path))
        assert [t.trace_id for t in loaded] == [f"t{i}" for i in range(5)]

    def test_load_skips_blank_lines(self, tmp_path):
        path = tmp_path / "traces.jsonl"
        trace = synthesize_trace(fig1_graph(), LATENCIES)
        path.write_text(
            "\n" + __import__("json").dumps(trace_to_dict(trace)) + "\n\n"
        )
        assert len(load_traces(str(path))) == 1


class TestSimulatorMetricsBridge:
    def _run(self, rate=20_000.0):
        spec = ServiceSpec("svc", DependencyGraph("svc", call("B")), 0.0, 1e9)
        sim = ClusterSimulator(
            [spec],
            {"B": SimulatedMicroservice("B", base_service_ms=5.0, threads=2)},
            containers={"B": 2},
            rates={"svc": rate},
            config=SimulationConfig(duration_min=2.0, warmup_min=0.0, seed=6),
        )
        return sim.run()

    def test_export_produces_profiling_windows(self):
        result = self._run()
        store = result.to_metrics_store(cpu_utilization=0.5, memory_utilization=0.3)
        windows = store.profiling_windows("B")
        assert len(windows) >= 2
        for window in windows:
            assert window.cpu_utilization == pytest.approx(0.5)
            assert window.per_container_load > 0
            assert window.tail_latency > 0

    def test_windows_reflect_per_container_load(self):
        result = self._run(rate=12_000.0)
        store = result.to_metrics_store()
        windows = store.profiling_windows("B")
        # ~12000 calls/min over 2 containers -> ~6000 per container.
        loads = [w.per_container_load for w in windows]
        assert 4_000 <= float(np.median(loads)) <= 8_000

    def test_full_telemetry_to_profile_pipeline(self):
        """Simulate at several loads, export, fit — the §5.2 loop."""
        loads, latencies = [], []
        for rate in (4_000.0, 10_000.0, 16_000.0, 20_000.0, 22_000.0):
            store = self._run(rate=rate).to_metrics_store()
            for window in store.profiling_windows("B"):
                loads.append(window.per_container_load)
                latencies.append(window.tail_latency)
        fit = fit_piecewise(np.array(loads), np.array(latencies))
        # Capacity is 24k/min per container; the knee must sit below it.
        assert 0 < fit.model.cutoff < 12_000.0
        assert fit.model.high.slope > fit.model.low.slope
