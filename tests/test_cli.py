"""Tests for the repro CLI."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_scale_defaults(self):
        args = build_parser().parse_args(["scale"])
        assert args.app == "social-network"
        assert args.scheme == "erms"

    def test_compare_accepts_lists(self):
        args = build_parser().parse_args(
            ["compare", "--workloads", "1000", "2000", "--slas", "150"]
        )
        assert args.workloads == [1000.0, 2000.0]
        assert args.slas == [150.0]

    def test_compare_workers_flag(self):
        args = build_parser().parse_args(["compare", "--workers", "4"])
        assert args.workers == 4
        assert args.simulate is False

    def test_trace_sim_workers_flag(self):
        args = build_parser().parse_args(["trace-sim", "--workers", "0"])
        assert args.workers == 0

    def test_report_defaults(self):
        args = build_parser().parse_args(["report"])
        assert args.window == 1.0
        assert args.sampling == 1.0
        assert args.output is None
        assert args.tail_threshold is None
        assert args.format == "tables"

    def test_report_sampling_rate_alias(self):
        args = build_parser().parse_args(["report", "--sampling-rate", "0.5"])
        assert args.sampling == 0.5

    def test_report_diff_takes_two_paths(self):
        args = build_parser().parse_args(["report", "--diff", "a.json", "b.json"])
        assert args.diff == ["a.json", "b.json"]
        with pytest.raises(SystemExit):
            build_parser().parse_args(["report", "--diff", "only-one.json"])

    def test_dashboard_defaults(self):
        args = build_parser().parse_args(["dashboard"])
        assert args.app == "social-network"
        assert args.duration == 3.0
        assert args.window == 1.0
        assert args.scrape_interval == 0.25
        assert args.rules is None
        assert args.output == "dashboard.html"
        assert args.chaos is False
        assert args.resilience is False

    def test_dashboard_accepts_chaos_and_rules(self):
        args = build_parser().parse_args(
            ["dashboard", "--chaos", "--resilience", "--rules", "r.json",
             "--scrape-interval", "0.1"]
        )
        assert args.chaos and args.resilience
        assert args.rules == "r.json"
        assert args.scrape_interval == 0.1

    def test_analyze_defaults(self):
        args = build_parser().parse_args(["analyze"])
        assert args.app == "social-network"
        assert args.duration == 3.0
        assert args.window == 1.0
        assert args.max_traces == 5000
        assert args.top_paths == 5
        assert args.sampling_rate == 1.0
        assert args.tail_threshold is None
        assert args.output is None

    def test_simulate_sampling_flags(self):
        args = build_parser().parse_args(
            ["simulate", "--sampling-rate", "0.25", "--tail-threshold", "80"]
        )
        assert args.sampling_rate == 0.25
        assert args.tail_threshold == 80.0

    def test_compare_sampling_flags(self):
        args = build_parser().parse_args(
            ["compare", "--sampling-rate", "0.5", "--tail-threshold", "120"]
        )
        assert args.sampling_rate == 0.5
        assert args.tail_threshold == 120.0

    def test_report_format_choices(self):
        assert build_parser().parse_args(
            ["report", "--format", "prom"]
        ).format == "prom"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["report", "--format", "xml"])

    def test_serve_flag_on_run_commands(self):
        parser = build_parser()
        assert parser.parse_args(["simulate"]).serve is None
        assert parser.parse_args(["simulate", "--serve"]).serve == 0
        assert parser.parse_args(["simulate", "--serve", "8123"]).serve == 8123
        assert parser.parse_args(["compare", "--serve"]).serve == 0
        assert parser.parse_args(["chaos", "--serve", "9090"]).serve == 9090

    def test_serve_subcommand_defaults(self):
        args = build_parser().parse_args(["serve", "--replay", "run.json"])
        assert args.replay == "run.json"
        assert args.host == "127.0.0.1"
        assert args.port == 8000

    def test_serve_subcommand_requires_replay(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve"])

    def test_top_defaults(self):
        args = build_parser().parse_args(["top"])
        assert args.url == "http://127.0.0.1:8000"
        assert args.interval == 1.0
        assert args.frames is None

    def test_log_format_flag(self):
        parser = build_parser()
        assert parser.parse_args(["simulate"]).log_format == "text"
        args = parser.parse_args(["--log-format", "json", "simulate"])
        assert args.log_format == "json"
        with pytest.raises(SystemExit):
            parser.parse_args(["--log-format", "yaml", "simulate"])

    def test_exit_codes_documented_in_help(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--help"])
        out = " ".join(capsys.readouterr().out.split())
        assert "exit codes:" in out
        assert "2 usage error" in out
        assert "3 runtime failure" in out


class TestCommands:
    def test_scale_prints_allocation(self, capsys):
        assert main(["scale", "--app", "hotel-reservation",
                     "--workload", "5000", "--sla", "250"]) == 0
        out = capsys.readouterr().out
        assert "Total containers:" in out
        assert "Priorities" in out  # hotel shares microservices

    def test_scale_each_scheme(self, capsys):
        for scheme in ("erms", "erms-fcfs", "grandslam", "rhythm", "firm"):
            assert main(["scale", "--scheme", scheme,
                         "--app", "hotel-reservation",
                         "--workload", "2000"]) == 0

    def test_unknown_scheme_exits_usage_code(self, capsys):
        assert main(["scale", "--scheme", "magic"]) == 2
        assert "unknown scheme" in capsys.readouterr().err

    def test_unknown_app_exits_usage_code(self, capsys):
        assert main(["scale", "--app", "nope"]) == 2
        assert "unknown application" in capsys.readouterr().err

    def test_simulate_reports_latency(self, capsys):
        assert main(["simulate", "--app", "hotel-reservation",
                     "--workload", "2000", "--duration", "0.4"]) == 0
        out = capsys.readouterr().out
        assert "p95_ms" in out

    def test_compare_runs_sweep(self, capsys):
        assert main(["compare", "--app", "hotel-reservation",
                     "--workloads", "2000", "--slas", "250"]) == 0
        out = capsys.readouterr().out
        assert "erms" in out and "grandslam" in out

    def test_trace_sim(self, capsys):
        assert main(["trace-sim", "--services", "5"]) == 0
        out = capsys.readouterr().out
        assert "fewer containers" in out

    def test_compare_simulate_adds_measured_columns(self, capsys):
        assert main(["compare", "--app", "hotel-reservation",
                     "--workloads", "2000", "--slas", "250",
                     "--simulate", "--duration", "0.4", "--workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "avg_violation" in out
        assert "avg_p95_ms" in out

    def test_report_prints_and_writes(self, capsys, tmp_path):
        import json

        report_path = tmp_path / "run.json"
        trace_path = tmp_path / "trace.json"
        assert main(["report", "--app", "hotel-reservation",
                     "--workload", "2000", "--sla", "250",
                     "--duration", "0.6", "--interval", "0.3",
                     "--window", "0.2", "--max-traces", "5",
                     "--output", str(report_path),
                     "--chrome-trace", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "SLA windows" in out
        assert "Alerts" in out
        report = json.loads(report_path.read_text())
        assert report["schema"] == 1
        assert report["windows"]
        trace = json.loads(trace_path.read_text())
        assert trace["traceEvents"]

    def test_simulate_tail_sampling_prints_retention(self, capsys):
        assert main(["simulate", "--app", "hotel-reservation",
                     "--workload", "2000", "--duration", "0.4",
                     "--tail-threshold", "50"]) == 0
        out = capsys.readouterr().out
        assert "Traces:" in out
        assert "tail_dropped=" in out

    def test_report_prom_format_parses(self, capsys):
        from repro.telemetry import parse_prometheus_text

        assert main(["report", "--app", "hotel-reservation",
                     "--workload", "2000", "--sla", "250",
                     "--duration", "0.6", "--interval", "0.3",
                     "--format", "prom"]) == 0
        out = capsys.readouterr().out
        parsed = parse_prometheus_text(out)
        assert parsed["requests_completed_total"]["value"] > 0
        assert any(name.startswith("e2e_latency_ms") for name in parsed)

    def test_analyze_prints_attribution(self, capsys, tmp_path):
        import json

        out_path = tmp_path / "analysis.json"
        assert main(["analyze", "--app", "hotel-reservation",
                     "--workload", "2000", "--sla", "250",
                     "--duration", "0.6", "--interval", "0.3",
                     "--window", "0.2", "--tail-threshold", "100",
                     "--output", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "Critical-path attribution" in out
        assert "Sampling: tail>100ms" in out
        report = json.loads(out_path.read_text())
        analysis = report["analysis"]
        assert analysis["critical_path"]
        assert "sampling" in analysis


def _tiny_report(tmp_path):
    """A minimal but complete run report file for serve/top tests."""
    from repro.core.model import ServiceSpec
    from repro.graphs import DependencyGraph, call
    from repro.simulator import (
        ClusterSimulator,
        SimulatedMicroservice,
        SimulationConfig,
    )
    from repro.telemetry import (
        TelemetryConfig,
        TelemetrySink,
        build_run_report,
        write_run_report,
    )

    sink = TelemetrySink(
        config=TelemetryConfig(window_min=0.2, spans=False, max_traces=0)
    )
    spec = ServiceSpec("svc", DependencyGraph("svc", call("B")), 0.0, 100.0)
    result = ClusterSimulator(
        [spec],
        {"B": SimulatedMicroservice("B", base_service_ms=5.0, threads=4)},
        containers={"B": 1},
        rates={"svc": 3_000.0},
        config=SimulationConfig(duration_min=0.3, warmup_min=0.05, seed=5),
        telemetry=sink,
    ).run()
    path = tmp_path / "report.json"
    write_run_report(build_run_report(sink, result, specs=[spec]), str(path))
    return path


class TestServeCommands:
    def test_serve_missing_replay_is_usage_error(self, capsys, tmp_path):
        assert main(["serve", "--replay", str(tmp_path / "nope.json")]) == 2
        assert "cannot read replay report" in capsys.readouterr().err

    def test_serve_invalid_report_is_runtime_error(self, capsys, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"schema": 99}')
        assert main(["serve", "--replay", str(bad)]) == 3

    def test_simulate_serve_end_to_end(self, monkeypatch, capsys):
        """``simulate --serve 0`` brings the plane up for the run and
        keeps serving the finished result until shutdown."""
        import json
        import urllib.request

        from repro.telemetry.serve import ObservabilityServer

        captured = {}
        real_stop = ObservabilityServer.stop

        def fake_wait(self, timeout=None):
            with urllib.request.urlopen(
                self.url + "/api/summary", timeout=10
            ) as response:
                captured["summary"] = json.loads(response.read())
            with urllib.request.urlopen(
                self.url + "/metrics", timeout=10
            ) as response:
                captured["metrics"] = response.read().decode()
            real_stop(self)
            return True

        monkeypatch.setattr(ObservabilityServer, "wait_for_shutdown", fake_wait)
        assert main(["simulate", "--app", "hotel-reservation",
                     "--workload", "2000", "--duration", "0.4",
                     "--serve", "0"]) == 0
        progress = captured["summary"]["progress"]
        assert progress["mode"] == "live"
        assert progress["complete"] is True
        assert "requests_completed_total" in captured["metrics"]
        err = capsys.readouterr().err
        assert "observability plane: http://" in err

    def test_top_renders_frame_from_live_server(self, capsys, tmp_path):
        from repro.telemetry import ObservabilityServer, load_replay_source

        path = _tiny_report(tmp_path)
        server = ObservabilityServer(load_replay_source(str(path))).start()
        try:
            assert main(["top", "--url", server.url, "--frames", "1"]) == 0
        finally:
            server.stop()
        out = capsys.readouterr().out
        assert out.startswith("repro top")
        assert "svc" in out

    def test_top_unreachable_is_runtime_error(self, capsys):
        assert main(["top", "--url", "http://127.0.0.1:9",
                     "--frames", "1"]) == 3
        assert "repro top" not in capsys.readouterr().out
