"""Prometheus exposition round-trips and SLA window boundary edges.

Regression coverage for two exposition bugs:

* distinct registry names sanitizing to the same Prometheus name
  (``e2e_latency_ms.svc-a`` vs ``e2e_latency_ms.svc_a``) silently merged
  series — now the later claimant gets a deterministic digest suffix;
* a standalone counter/gauge whose name literally ends in ``_sum`` or
  ``_count`` was swallowed into an unrelated histogram sharing the
  prefix on parse — now an exact ``# TYPE`` declaration wins.
"""

import pytest

from repro.telemetry import MetricsRegistry, SLAMonitor
from repro.telemetry.registry import parse_prometheus_text


class TestNameCollisions:
    def test_sanitized_collision_gets_deterministic_suffix(self):
        registry = MetricsRegistry(latency_bounds=[1.0, 10.0])
        registry.histogram("e2e_latency_ms.svc-a").observe(0.5)
        registry.histogram("e2e_latency_ms.svc_a").observe(5.0)
        text = registry.expose_text()
        # exactly one plain family plus one suffixed family — no merge
        assert text.count("# TYPE e2e_latency_ms_svc_a histogram") == 1
        assert text.count("# TYPE e2e_latency_ms_svc_a_") == 1
        parsed = parse_prometheus_text(text)
        hists = [k for k in parsed if k.startswith("e2e_latency_ms_svc_a")]
        assert len(hists) == 2
        for name in hists:
            assert parsed[name]["count"] == 1  # one observation each

    def test_collision_resolution_is_registration_order_independent(self):
        first, second = MetricsRegistry(), MetricsRegistry()
        first.counter("x.a-b").inc()
        first.counter("x.a_b").inc(2)
        second.counter("x.a_b").inc(2)
        second.counter("x.a-b").inc()
        assert first.expose_text() == second.expose_text()

    def test_cross_kind_collision_also_disambiguated(self):
        registry = MetricsRegistry()
        registry.gauge("queue-depth").set(3)
        registry.gauge("queue_depth").set(7)
        parsed = parse_prometheus_text(registry.expose_text())
        values = sorted(
            entry["value"]
            for name, entry in parsed.items()
            if name.startswith("queue_depth")
        )
        assert values == [3.0, 7.0]


class TestStandaloneSumCountMetrics:
    def test_counter_named_like_histogram_suffix_survives(self):
        registry = MetricsRegistry(latency_bounds=[1.0, 10.0])
        registry.histogram("req").observe(0.5)
        # names that would suffix-strip into the "req" histogram
        registry.counter("req_count").inc(42)
        registry.gauge("req_sum").set(7.5)
        parsed = parse_prometheus_text(registry.expose_text())
        # the gauge claimed the literal name "req_sum" first, so the
        # histogram's whole family moved to a digest-suffixed name
        [hist_name] = [
            k for k, v in parsed.items() if v["type"] == "histogram"
        ]
        assert hist_name.startswith("req_")
        assert parsed[hist_name]["count"] == 1
        assert parsed[hist_name]["sum"] == 0.5
        # counters keep their _total suffix in the exposition
        assert parsed["req_count_total"] == {"type": "counter", "value": 42.0}
        assert parsed["req_sum"] == {"type": "gauge", "value": 7.5}

    def test_undeclared_sum_suffix_is_not_merged(self):
        # _sum line with no histogram TYPE declared for the prefix stays
        # a standalone untyped metric
        parsed = parse_prometheus_text("foo_sum 3.5\n")
        assert parsed == {"foo_sum": {"type": "untyped", "value": 3.5}}


class TestFullRoundTrip:
    def test_all_metric_kinds_round_trip(self):
        registry = MetricsRegistry(latency_bounds=[1.0, 5.0, 25.0])
        registry.counter("events").inc(10)
        registry.gauge("depth").set(2.5)
        hist = registry.histogram("lat.svc")
        for value in (0.5, 3.0, 100.0):  # includes an overflow sample
            hist.observe(value)
        registry.histogram("empty.hist")  # zero observations
        parsed = parse_prometheus_text(registry.expose_text())

        assert parsed["events_total"] == {"type": "counter", "value": 10.0}
        assert parsed["depth"] == {"type": "gauge", "value": 2.5}
        lat = parsed["lat_svc"]
        assert lat["type"] == "histogram"
        assert lat["count"] == 3 and lat["sum"] == pytest.approx(103.5)
        # cumulative buckets, ending at the mandatory +Inf
        assert lat["buckets"][1.0] == 1
        assert lat["buckets"][5.0] == 2
        assert lat["buckets"][25.0] == 2
        assert lat["buckets"][float("inf")] == 3
        empty = parsed["empty_hist"]
        assert empty["count"] == 0 and empty["sum"] == 0.0
        assert all(v == 0 for v in empty["buckets"].values())

    def test_inf_bucket_rendering(self):
        registry = MetricsRegistry(latency_bounds=[1.0])
        registry.histogram("h").observe(0.5)
        text = registry.expose_text()
        assert 'h_bucket{le="+Inf"} 1' in text


class TestExemplarRoundTrip:
    def test_exemplar_survives_expose_and_parse(self):
        registry = MetricsRegistry(latency_bounds=[1.0, 10.0, 100.0])
        hist = registry.histogram("lat.svc")
        hist.observe(5.0)
        hist.observe(50.0)
        hist.attach_exemplar(5.0, "trace-abc")
        hist.attach_exemplar(50.0, "trace-def")
        text = registry.expose_text()
        assert '# {trace_id="trace-abc"} 5' in text
        parsed = parse_prometheus_text(text)
        exemplars = parsed["lat_svc"]["exemplars"]
        assert exemplars[10.0] == {"trace_id": "trace-abc", "value": 5.0}
        assert exemplars[100.0] == {"trace_id": "trace-def", "value": 50.0}

    def test_latest_exemplar_per_bucket_wins(self):
        registry = MetricsRegistry(latency_bounds=[10.0])
        hist = registry.histogram("h")
        hist.observe(1.0)
        hist.observe(2.0)
        hist.attach_exemplar(1.0, "first")
        hist.attach_exemplar(2.0, "second")
        parsed = parse_prometheus_text(registry.expose_text())
        assert parsed["h"]["exemplars"] == {
            10.0: {"trace_id": "second", "value": 2.0}
        }

    def test_overflow_bucket_exemplar_lands_on_inf(self):
        registry = MetricsRegistry(latency_bounds=[1.0])
        hist = registry.histogram("h")
        hist.observe(99.0)
        hist.attach_exemplar(99.0, "slowpoke")
        parsed = parse_prometheus_text(registry.expose_text())
        assert parsed["h"]["exemplars"][float("inf")]["trace_id"] == "slowpoke"

    def test_trace_id_escaping_round_trips(self):
        registry = MetricsRegistry(latency_bounds=[1.0])
        hist = registry.histogram("h")
        hist.observe(0.5)
        tricky = 'id-with-"quote"-and-\\backslash'
        hist.attach_exemplar(0.5, tricky)
        parsed = parse_prometheus_text(registry.expose_text())
        assert parsed["h"]["exemplars"][1.0]["trace_id"] == tricky

    def test_exemplar_free_exposition_is_unchanged(self):
        with_none = MetricsRegistry(latency_bounds=[1.0])
        with_none.histogram("h").observe(0.5)
        baseline = with_none.expose_text()
        assert "#" not in baseline.replace("# TYPE", "")
        parsed = parse_prometheus_text(baseline)
        assert "exemplars" not in parsed["h"]


class TestWindowBoundaries:
    """A sample landing exactly on a window edge buckets identically in
    the live monitor and the post-hoc window API (both floor-divide)."""

    def test_boundary_sample_buckets_into_next_window(self):
        monitor = SLAMonitor(slas={"svc": 10.0})
        window_min = 0.5
        for minute, latency in [(0.49, 5.0), (0.5, 20.0), (0.99, 5.0)]:
            monitor.observe("svc", int(minute / window_min), latency)
        closed = monitor.close_all(window_min)
        by_index = {w.window: w for w in closed}
        assert by_index[0].count == 1 and by_index[0].violations == 0
        # the t=0.5 sample belongs to window 1, not window 0
        assert by_index[1].count == 2 and by_index[1].violations == 1
        assert by_index[1].start_min == 0.5

    def test_close_windows_is_idempotent_per_window(self):
        monitor = SLAMonitor(slas={"svc": 10.0})
        monitor.observe("svc", 0, 1.0)
        monitor.observe("svc", 1, 1.0)
        first = monitor.close_windows(before=1, window_min=1.0)
        assert [w.window for w in first] == [0]
        again = monitor.close_windows(before=1, window_min=1.0)
        assert again == []  # window 0 is gone; nothing reopens
        rest = monitor.close_all(1.0)
        assert [w.window for w in rest] == [1]
        assert [w.window for w in monitor.windows] == [0, 1]

    def test_errors_only_window_closes_clean(self):
        monitor = SLAMonitor(slas={"svc": 10.0}, error_budget=0.1)
        monitor.observe_error("svc", 3)
        [window] = monitor.close_all(0.25)
        assert window.count == 0 and window.errors == 1
        assert window.p95_ms == 0.0
        assert window.error_rate == 1.0
        assert monitor.error_alerts  # budget exceeded
        assert not monitor.alerts  # no latency alert without samples
