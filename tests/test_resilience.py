"""Resilience layer: chaos schedules, policies, and graceful degradation."""

import numpy as np
import pytest

from repro.core import ServiceSpec
from repro.graphs import DependencyGraph, call
from repro.resilience import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    AdmissionPolicy,
    ChaosSchedule,
    CircuitBreaker,
    CircuitBreakerPolicy,
    CrashEvent,
    ErrorWindow,
    LatencySpike,
    ResiliencePolicies,
    RetryPolicy,
    SpikeMultiplier,
    TimeoutPolicy,
)
from repro.simulator import (
    ClusterSimulator,
    SimulatedMicroservice,
    SimulationConfig,
)
from repro.telemetry import TelemetryConfig, TelemetrySink


def make_sim(
    chaos=None,
    resilience=None,
    telemetry=None,
    rate=6_000.0,
    duration=0.5,
    seed=7,
    base_ms=2.0,
    containers=2,
    threads=4,
):
    spec = ServiceSpec("svc", DependencyGraph("svc", call("B")), 0.0, 1e9)
    return ClusterSimulator(
        [spec],
        {"B": SimulatedMicroservice("B", base_service_ms=base_ms, threads=threads)},
        containers={"B": containers},
        rates={"svc": rate},
        config=SimulationConfig(duration_min=duration, warmup_min=0.0, seed=seed),
        telemetry=telemetry,
        chaos=chaos,
        resilience=resilience,
    )


class TestChaosSchedule:
    def test_event_validation(self):
        with pytest.raises(ValueError, match="at_min"):
            CrashEvent(at_min=-1.0, microservice="B")
        with pytest.raises(ValueError, match="end_min"):
            ErrorWindow("B", start_min=1.0, end_min=1.0, error_rate=0.5)
        with pytest.raises(ValueError, match="error_rate"):
            ErrorWindow("B", start_min=0.0, end_min=1.0, error_rate=1.5)
        with pytest.raises(ValueError, match="multiplier"):
            LatencySpike("B", start_min=0.0, end_min=1.0, multiplier=0.0)

    def test_random_is_deterministic(self):
        first = ChaosSchedule.random(["a", "b", "c"], duration_min=2.0, seed=9)
        second = ChaosSchedule.random(["a", "b", "c"], duration_min=2.0, seed=9)
        assert first == second
        assert first != ChaosSchedule.random(
            ["a", "b", "c"], duration_min=2.0, seed=10
        )

    def test_error_rate_lookup(self):
        schedule = ChaosSchedule(
            error_windows=[ErrorWindow("B", 1.0, 2.0, 0.25)]
        )
        assert schedule.error_rate_at("B", 1.5) == 0.25
        assert schedule.error_rate_at("B", 2.5) == 0.0
        assert schedule.error_rate_at("other", 1.5) == 0.0
        assert not schedule.is_empty()
        assert ChaosSchedule().is_empty()

    def test_unknown_microservice_rejected_at_run(self):
        chaos = ChaosSchedule(crashes=[CrashEvent(0.1, "nope")])
        sim = make_sim(chaos=chaos)
        with pytest.raises(ValueError, match="unknown microservices"):
            sim.run()


class TestSpikeMultiplier:
    def test_composes_base_and_windows(self):
        spike = SpikeMultiplier(2.0, [(1.0, 2.0, 3.0)])
        assert spike(0.5) == 2.0
        assert spike(1.5) == 6.0
        callable_base = SpikeMultiplier(lambda m: 1.0 + m, [(1.0, 2.0, 4.0)])
        assert callable_base(0.0) == 1.0
        assert callable_base(1.0) == 8.0

    def test_spike_window_raises_latency(self):
        calm = make_sim(duration=1.0).run()
        spiked = make_sim(
            duration=1.0,
            chaos=ChaosSchedule(
                latency_spikes=[LatencySpike("B", 0.2, 0.8, 8.0)]
            ),
        ).run()
        assert spiked.tail_latency("svc") > calm.tail_latency("svc") * 2


class TestCircuitBreakerUnit:
    def test_full_lifecycle(self):
        policy = CircuitBreakerPolicy(
            failure_threshold=3, cooldown_ms=100.0,
            half_open_probes=2, success_to_close=2,
        )
        breaker = CircuitBreaker(policy)
        assert breaker.state == BREAKER_CLOSED
        for _ in range(2):
            assert breaker.record_failure(0.0) is None
        assert breaker.record_failure(0.0) == BREAKER_OPEN
        assert breaker.allow(50.0) == (False, None)  # cooling down
        admitted, transition = breaker.allow(150.0)
        assert admitted and transition == BREAKER_HALF_OPEN
        assert breaker.allow(151.0) == (True, None)  # second probe slot
        assert breaker.allow(152.0) == (False, None)  # probes exhausted
        assert breaker.record_success(160.0) is None
        assert breaker.record_success(161.0) == BREAKER_CLOSED

    def test_probe_failure_reopens(self):
        policy = CircuitBreakerPolicy(failure_threshold=1, cooldown_ms=100.0)
        breaker = CircuitBreaker(policy)
        assert breaker.record_failure(0.0) == BREAKER_OPEN
        admitted, _ = breaker.allow(200.0)
        assert admitted
        assert breaker.record_failure(210.0) == BREAKER_OPEN
        assert breaker.opens == 2
        assert breaker.allow(250.0) == (False, None)

    def test_success_resets_consecutive_failures(self):
        breaker = CircuitBreaker(CircuitBreakerPolicy(failure_threshold=2))
        breaker.record_failure(0.0)
        breaker.record_success(1.0)
        assert breaker.record_failure(2.0) is None  # streak was broken
        assert breaker.state == BREAKER_CLOSED


class TestErrorsAndRetries:
    OUTAGE = ChaosSchedule(error_windows=[ErrorWindow("B", 0.0, 10.0, 1.0)])
    FLAKY = ChaosSchedule(error_windows=[ErrorWindow("B", 0.0, 10.0, 0.3)])

    def test_errors_fail_requests_without_policies(self):
        result = make_sim(chaos=self.OUTAGE).run()
        assert result.completed.get("svc", 0) == 0
        assert result.failed_requests["svc"] == result.generated["svc"]
        assert result.resilience["errors_injected"] == result.generated["svc"]

    def test_retries_recover_partial_errors(self):
        unprotected = make_sim(chaos=self.FLAKY).run()
        protected = make_sim(
            chaos=self.FLAKY,
            resilience=ResiliencePolicies(retry=RetryPolicy(max_attempts=4)),
        ).run()
        assert unprotected.failed_requests["svc"] > 0
        # 0.3^4 per request vs 0.3: retries recover the overwhelming bulk.
        assert (
            protected.failed_requests.get("svc", 0)
            < unprotected.failed_requests["svc"] / 10
        )
        assert protected.resilience["retries"] > 0

    def test_request_errors_reach_telemetry(self):
        sink = TelemetrySink(
            config=TelemetryConfig(window_min=0.25, error_budget=0.01)
        )
        make_sim(chaos=self.FLAKY, telemetry=sink).run()
        counters = {
            name: c.value for name, c in sink.registry.counters.items()
        }
        assert counters.get("chaos_errors", 0) > 0
        assert counters.get("request_errors.svc.error", 0) > 0
        # 30% error rate blows any 1% error budget in every window.
        assert sink.monitor.error_alerts
        alert = sink.monitor.error_alerts[0]
        assert alert.service == "svc"
        assert alert.error_rate > 0.01


class TestTimeouts:
    def test_timeout_abandons_stragglers(self):
        # 2 ms timeout against an exponential 10 ms service: only the
        # ~18 % of draws under 2 ms complete; the rest are abandoned and,
        # with no retry policy, fail.
        result = make_sim(
            base_ms=10.0,
            rate=3_000.0,
            resilience=ResiliencePolicies(
                timeout=TimeoutPolicy(call_timeout_ms=2.0)
            ),
        ).run()
        stats = result.resilience
        generated = result.generated["svc"]
        completed = result.completed.get("svc", 0)
        assert 0 < completed < 0.3 * generated
        assert stats["timeouts"] == generated - completed
        assert result.failed_requests["svc"] == generated - completed
        # The abandoned work still ran to completion server-side.
        assert stats["late_completions"] > 0
        # Every surviving latency sample respects the client's deadline.
        assert result.latencies("svc", include_warmup=True).max() <= 2.0

    def test_generous_timeout_is_invisible(self):
        plain = make_sim().run()
        timed = make_sim(
            resilience=ResiliencePolicies(
                timeout=TimeoutPolicy(call_timeout_ms=10_000.0)
            ),
        ).run()
        assert timed.resilience["timeouts"] == 0
        assert timed.completed["svc"] == plain.completed["svc"]


class TestBreakerIntegration:
    def test_outage_trips_and_recovery_closes(self):
        chaos = ChaosSchedule(
            error_windows=[ErrorWindow("B", 0.1, 0.3, 1.0)]
        )
        sink = TelemetrySink()
        result = make_sim(
            duration=0.6,
            chaos=chaos,
            telemetry=sink,
            resilience=ResiliencePolicies(
                breaker=CircuitBreakerPolicy(
                    failure_threshold=5, cooldown_ms=1_000.0
                ),
            ),
        ).run()
        stats = result.resilience
        assert stats["breaker_opens"] >= 1
        assert stats["breaker_fast_fails"] > 0
        assert stats["breaker_closes"] >= 1  # closed again after the window
        transitions = [
            r for r in sink.decisions.records if r.actor == "circuit-breaker"
        ]
        assert any("closed -> open" in r.reason for r in transitions)
        assert any("-> closed" in r.reason for r in transitions)
        gauge = sink.registry.gauges.get("breaker_state.svc.B")
        assert gauge is not None and gauge.value == BREAKER_CLOSED


class TestAdmissionControl:
    def overloaded(self, resilience, telemetry=None):
        gold = ServiceSpec("gold", DependencyGraph("gold", call("B")), 0.0, 1e9)
        be = ServiceSpec("be", DependencyGraph("be", call("B")), 0.0, 1e9)
        # Capacity 2 containers * 4 threads / 2 ms = 240k/min; offer 360k.
        return ClusterSimulator(
            [gold, be],
            {"B": SimulatedMicroservice("B", base_service_ms=2.0, threads=4)},
            containers={"B": 2},
            rates={"gold": 120_000.0, "be": 240_000.0},
            config=SimulationConfig(
                duration_min=0.3, warmup_min=0.0, seed=11
            ),
            telemetry=telemetry,
            resilience=resilience,
        ).run()

    def test_sheds_low_priority_only(self):
        sink = TelemetrySink()
        result = self.overloaded(
            ResiliencePolicies(
                admission=AdmissionPolicy(
                    max_queue_per_thread=4.0, ranks={"gold": 0, "be": 1}
                )
            ),
            telemetry=sink,
        )
        assert result.shed_requests.get("be", 0) > 0
        assert "gold" not in result.shed_requests  # rank 0 is never shed
        sheds = [r for r in sink.decisions.records if r.actor == "admission"]
        assert sheds and all("be" in r.reason for r in sheds)

    def test_latency_threshold_shedding(self):
        result = self.overloaded(
            ResiliencePolicies(
                admission=AdmissionPolicy(
                    max_queue_per_thread=1e9,  # queue trigger off
                    latency_threshold_ms=20.0,
                    ranks={"gold": 0, "be": 1},
                )
            ),
        )
        assert result.shed_requests.get("be", 0) > 0
        assert "gold" not in result.shed_requests


class TestChaosDeterminism:
    CHAOS = ChaosSchedule(
        crashes=[CrashEvent(0.15, "B", restart_after_ms=3_000.0)],
        error_windows=[ErrorWindow("B", 0.25, 0.4, 0.3)],
        latency_spikes=[LatencySpike("B", 0.1, 0.2, 2.0)],
        seed=5,
    )

    def run_once(self):
        return make_sim(
            duration=0.5,
            chaos=self.CHAOS,
            resilience=ResiliencePolicies.default(seed=3),
        ).run()

    def test_same_schedule_same_seed_bit_identical(self):
        first, second = self.run_once(), self.run_once()
        assert first.generated == second.generated
        assert first.completed == second.completed
        assert first.failed_requests == second.failed_requests
        assert first.shed_requests == second.shed_requests
        assert first.resilience == second.resilience
        assert np.array_equal(
            first.latencies("svc", include_warmup=True),
            second.latencies("svc", include_warmup=True),
        )

    def test_policy_seed_changes_only_policy_stream(self):
        other = make_sim(
            duration=0.5,
            chaos=self.CHAOS,
            resilience=ResiliencePolicies.default(seed=4),
        ).run()
        base = self.run_once()
        # Same workload reaches the system either way; the fault/backoff
        # draws differ.
        assert base.generated == other.generated


class TestResilienceSweep:
    def test_policies_reduce_high_priority_misses(self):
        from repro.experiments import run_resilience_sweep

        sweep = run_resilience_sweep(
            policy_grid=[
                ("no-policy", ResiliencePolicies.disabled()),
                ("full", ResiliencePolicies.default()),
            ],
        )
        # Identical faults, identical seeds: the full stack must cut the
        # high-priority tenant's SLA miss rate vs the no-policy baseline.
        assert sweep.improvement("gold") > 0
        assert sweep.improvement("besteffort") > 0
        full_stats = next(
            r["stats"] for r in sweep.rows if r["policy"] == "full"
        )
        assert full_stats["retries"] > 0
        assert full_stats["breaker_opens"] >= 1
        assert full_stats["shed"] > 0
        assert full_stats["crashes"] == 1 and full_stats["restarts"] == 1
        # Rank 0 is never shed even under the crash backlog.
        gold = sweep.row("full", "gold")
        assert gold["shed"] == 0

    def test_sweep_parallel_equals_serial(self):
        from repro.experiments import run_resilience_sweep

        scenario_chaos = ChaosSchedule(
            crashes=[CrashEvent(0.15, "shared-db", restart_after_ms=2_000.0)],
            error_windows=[ErrorWindow("shared-db", 0.25, 0.4, 0.3)],
            seed=2,
        )
        grid = [
            ("no-policy", ResiliencePolicies.disabled()),
            ("full", ResiliencePolicies.default()),
        ]
        serial = run_resilience_sweep(
            chaos=scenario_chaos, policy_grid=grid,
            duration_min=0.5, warmup_min=0.1, workers=1,
        )
        parallel = run_resilience_sweep(
            chaos=scenario_chaos, policy_grid=grid,
            duration_min=0.5, warmup_min=0.1, workers=2,
        )
        assert serial.rows == parallel.rows


class TestDisabledPathUntouched:
    def test_no_chaos_no_policies_attaches_nothing(self):
        sim = make_sim()
        assert sim._resilience is None
        result = sim.run()
        assert result.resilience is None
        assert result.failed_requests == {}
        assert result.shed_requests == {}
