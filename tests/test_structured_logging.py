"""Structured stderr logging: formats, correlation fields, and the
DecisionLog mirror wired up by ``--log-format json``."""

import io
import json

import pytest

from repro.telemetry import DecisionLog, StructuredLogger


class TestStructuredLogger:
    def test_json_lines_carry_correlation_fields(self):
        stream = io.StringIO()
        logger = StructuredLogger(fmt="json", run_id="sim-42", stream=stream)
        logger.log("decision", actor="autoscaler", minute=1.5, delta=2)
        logger.log("http_access", actor="serve", path="/metrics", status=200)
        lines = [json.loads(l) for l in stream.getvalue().splitlines()]
        assert len(lines) == 2
        assert all(entry["run_id"] == "sim-42" for entry in lines)
        assert lines[0]["event"] == "decision"
        assert lines[0]["actor"] == "autoscaler"
        assert lines[0]["minute"] == 1.5
        assert lines[1]["actor"] == "serve"
        assert lines[1]["path"] == "/metrics"
        assert logger.lines == 2

    def test_none_fields_are_dropped(self):
        stream = io.StringIO()
        logger = StructuredLogger(fmt="json", run_id="r", stream=stream)
        logger.log("decision", actor="a", reason=None, before=1)
        entry = json.loads(stream.getvalue())
        assert "reason" not in entry
        assert entry["before"] == 1

    def test_text_format_is_key_value(self):
        stream = io.StringIO()
        logger = StructuredLogger(fmt="text", run_id="r1", stream=stream)
        logger.log("decision", actor="chaos", microservice="db")
        line = stream.getvalue().strip()
        assert line.startswith("event=decision run_id=r1 actor=chaos")
        assert "microservice=db" in line

    def test_rejects_unknown_format(self):
        with pytest.raises(ValueError, match="log format"):
            StructuredLogger(fmt="yaml")


class TestDecisionLogMirror:
    def test_records_mirror_to_logger(self):
        stream = io.StringIO()
        logger = StructuredLogger(fmt="json", run_id="run-7", stream=stream)
        log = DecisionLog(logger=logger)
        log.record(
            minute=0.5,
            actor="autoscaler",
            microservice="db",
            before=2,
            after=3,
            reason="p95 over target",
        )
        assert len(log.records) == 1
        entry = json.loads(stream.getvalue())
        assert entry["event"] == "decision"
        assert entry["run_id"] == "run-7"
        assert entry["actor"] == "autoscaler"
        assert entry["microservice"] == "db"
        assert entry["before"] == 2
        assert entry["after"] == 3
        assert entry["reason"] == "p95 over target"

    def test_no_logger_means_no_output(self):
        log = DecisionLog()
        log.record(
            minute=0.0, actor="a", microservice="m", before=1, after=1,
            reason="noop",
        )
        assert log.logger is None
        assert len(log.records) == 1
