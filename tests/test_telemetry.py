"""Tests for the live telemetry layer (`repro.telemetry`).

The load-bearing contracts:

* attaching a sink never perturbs the engine — the golden shared run's
  output streams are byte-identical with and without telemetry;
* the live MetricsStore equals the post-hoc ``to_metrics_store``
  reconstruction sample-for-sample on the same seed;
* emitted spans reconstruct the dependency graph exactly and Eq. 1
  recovers the engine's own-latency streams;
* the SLA monitor's windows agree with
  ``SimulationResult.violation_rate_by_window`` window-for-window.
"""

import json

import numpy as np
import pytest

from repro.core import Cluster, InterferenceAwareProvisioner
from repro.core.model import ServiceSpec
from repro.deployment import DeploymentController, MockKubeApi
from repro.graphs import DependencyGraph, call
from repro.simulator import (
    ClusterSimulator,
    SimulatedMicroservice,
    SimulationConfig,
)
from repro.telemetry import (
    DecisionLog,
    MetricsRegistry,
    SLAMonitor,
    TelemetryConfig,
    TelemetrySink,
    build_run_report,
    chrome_trace_events,
    default_latency_buckets,
    parse_prometheus_text,
    write_chrome_trace,
    write_run_report,
)
from repro.tracing.coordinator import TracingCoordinator
from repro.tracing.spans import SpanKind


def shared_simulator(telemetry=None, seed=42):
    """The golden shared-fanout scenario (same shape as the pinned run)."""
    s1 = ServiceSpec(
        "s1",
        DependencyGraph("s1", call("F", stages=[[call("P"), call("Q")]])),
        0.0,
        300.0,
    )
    s2 = ServiceSpec(
        "s2", DependencyGraph("s2", call("G", stages=[[call("P")]])), 0.0, 300.0
    )
    return ClusterSimulator(
        [s1, s2],
        {
            "F": SimulatedMicroservice("F", 4.0, 2),
            "G": SimulatedMicroservice("G", 6.0, 2),
            "P": SimulatedMicroservice("P", 3.0, 4),
            "Q": SimulatedMicroservice("Q", 5.0, 2),
        },
        containers={"F": 2, "G": 2, "P": 2, "Q": 2},
        rates={"s1": 9_000.0, "s2": 6_000.0},
        config=SimulationConfig(duration_min=0.5, warmup_min=0.1, seed=seed),
        telemetry=telemetry,
    )


def run_instrumented(config=None, coordinator=None, seed=42):
    sink = TelemetrySink(
        config=config or TelemetryConfig(window_min=0.25),
        coordinator=coordinator,
    )
    result = shared_simulator(telemetry=sink, seed=seed).run()
    return sink, result


# ----------------------------------------------------------------------
# Registry primitives
# ----------------------------------------------------------------------
class TestRegistry:
    def test_counter_increments(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.counter("c").inc(4)
        assert registry.counter("c").value == 5

    def test_gauge_sets(self):
        registry = MetricsRegistry()
        registry.gauge("g").set(2.5)
        assert registry.gauge("g").value == 2.5

    def test_histogram_counts_and_quantile(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h")
        for value in [1.0, 2.0, 4.0, 8.0, 100.0]:
            histogram.observe(value)
        assert histogram.count == 5
        assert histogram.sum == pytest.approx(115.0)
        assert histogram.mean == pytest.approx(23.0)
        # The quantile is a bucket upper bound: conservative, never below.
        assert histogram.quantile(0.5) >= 2.0
        assert histogram.quantile(1.0) >= 100.0

    def test_default_buckets_cover_latency_range(self):
        buckets = default_latency_buckets()
        assert buckets[0] <= 0.5
        assert buckets[-1] >= 50_000.0  # covers ~1-minute tails
        assert all(b2 > b1 for b1, b2 in zip(buckets, buckets[1:]))

    def test_snapshot_is_json_ready(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.gauge("g").set(1.0)
        registry.histogram("h").observe(3.0)
        snapshot = registry.snapshot()
        json.dumps(snapshot)  # must not raise
        assert snapshot["counters"]["c"] == 1
        assert "h" in snapshot["histograms"]


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
class TestPrometheusExposition:
    def test_round_trip_all_metric_kinds(self):
        registry = MetricsRegistry(latency_bounds=[1.0, 10.0, 100.0])
        registry.counter("requests").inc(42)
        registry.gauge("queue_depth").set(7.5)
        histogram = registry.histogram("latency_ms")
        for value in [0.5, 5.0, 50.0, 500.0]:
            histogram.observe(value)

        parsed = parse_prometheus_text(registry.expose_text())
        assert parsed["requests_total"]["value"] == 42
        assert parsed["queue_depth"]["value"] == 7.5
        hist = parsed["latency_ms"]
        assert hist["type"] == "histogram"
        # Cumulative buckets: 1 below le=1, 2 below le=10, 3 below le=100,
        # all 4 below +Inf.
        assert hist["buckets"][1.0] == 1
        assert hist["buckets"][10.0] == 2
        assert hist["buckets"][100.0] == 3
        assert hist["buckets"][float("inf")] == 4
        assert hist["sum"] == pytest.approx(555.5)
        assert hist["count"] == 4

    def test_bucket_counts_are_cumulative_and_monotone(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h")
        rng = np.random.default_rng(0)
        for value in rng.exponential(20.0, size=200):
            histogram.observe(float(value))
        hist = parse_prometheus_text(registry.expose_text())["h"]
        counts = [hist["buckets"][le] for le in sorted(hist["buckets"])]
        assert counts == sorted(counts)
        assert counts[-1] == hist["count"] == 200

    def test_names_are_sanitized(self):
        registry = MetricsRegistry()
        registry.counter("latency.ms/svc-a").inc()
        text = registry.expose_text()
        assert "latency_ms_svc_a_total 1" in text
        assert "latency.ms" not in text

    def test_type_lines_present(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.gauge("g").set(1.0)
        registry.histogram("h").observe(3.0)
        text = registry.expose_text()
        assert "# TYPE c_total counter" in text
        assert "# TYPE g gauge" in text
        assert "# TYPE h histogram" in text
        assert text.endswith("\n")

    def test_live_run_exposition_parses(self):
        sink, result = run_instrumented()
        parsed = parse_prometheus_text(sink.registry.expose_text())
        completed = sum(result.completed.values())
        assert parsed["requests_completed_total"]["value"] == completed


# ----------------------------------------------------------------------
# SLA monitor + decision log
# ----------------------------------------------------------------------
class TestSLAMonitor:
    def test_windows_close_in_order(self):
        monitor = SLAMonitor({"svc": 100.0})
        for latency in (50.0, 80.0, 150.0):
            monitor.observe("svc", 0, latency)
        monitor.observe("svc", 1, 60.0)
        closed = monitor.close_windows(before=1, window_min=1.0)
        assert [w.window for w in closed] == [0]
        assert closed[0].count == 3
        assert closed[0].violations == 1
        remaining = monitor.close_all(window_min=1.0)
        assert [w.window for w in remaining] == [1]

    def test_alert_fires_when_p95_breaks_sla(self):
        monitor = SLAMonitor({"svc": 100.0})
        for _ in range(20):
            monitor.observe("svc", 0, 150.0)
        monitor.close_all(window_min=1.0)
        assert len(monitor.alerts) == 1
        alert = monitor.alerts[0]
        assert alert.service == "svc"
        assert alert.p95_ms > alert.sla_ms

    def test_no_alert_without_sla(self):
        monitor = SLAMonitor()
        monitor.observe("svc", 0, 1e9)
        monitor.close_all(window_min=1.0)
        assert monitor.alerts == []
        assert monitor.windows[0].violations == 0

    def test_violation_rate_aggregates_windows(self):
        monitor = SLAMonitor({"svc": 100.0})
        for latency in (50.0, 150.0):
            monitor.observe("svc", 0, latency)
        for latency in (50.0, 50.0, 50.0, 150.0):
            monitor.observe("svc", 1, latency)
        monitor.close_all(window_min=1.0)
        assert monitor.violation_rate("svc") == pytest.approx(2 / 6)
        assert monitor.violation_rate("svc", min_window=1) == pytest.approx(1 / 4)

    def test_violation_rate_requires_windows(self):
        with pytest.raises(ValueError, match="no closed windows"):
            SLAMonitor().violation_rate("ghost")


class TestDecisionLog:
    def test_record_and_query(self):
        log = DecisionLog()
        log.record(1.0, "autoscaler", "ms-a", 2, 5, "scale up", workload=100.0)
        log.record(2.0, "simulator", "ms-a", 5, 3, "scale down")
        assert len(log) == 2
        assert [r.delta for r in log.records] == [3, -2]
        assert len(log.by_actor("autoscaler")) == 1
        assert len(log.scale_ups()) == 1
        assert len(log.scale_downs()) == 1
        dicts = log.to_dicts()
        assert dicts[0]["workload"] == 100.0
        assert "workload" not in dicts[1]


# ----------------------------------------------------------------------
# Engine non-perturbation (golden determinism with telemetry on)
# ----------------------------------------------------------------------
class TestNonPerturbation:
    def test_enabled_equals_disabled_byte_for_byte(self):
        plain = shared_simulator().run()
        sink, instrumented = run_instrumented()
        for name in ("s1", "s2"):
            assert np.array_equal(
                plain.latencies(name, include_warmup=True),
                instrumented.latencies(name, include_warmup=True),
            )
        assert plain.generated == instrumented.generated
        assert plain.completed == instrumented.completed
        for name in ("F", "G", "P", "Q"):
            assert np.array_equal(
                np.frombuffer(plain._own[name][1], dtype=np.float64),
                np.frombuffer(instrumented._own[name][1], dtype=np.float64),
            )

    def test_sampling_rate_does_not_perturb_engine(self):
        _, full = run_instrumented()
        _, sampled = run_instrumented(
            config=TelemetryConfig(window_min=0.25, sampling_rate=0.25)
        )
        for name in ("s1", "s2"):
            assert np.array_equal(
                full.latencies(name, include_warmup=True),
                sampled.latencies(name, include_warmup=True),
            )

    def test_sink_serves_exactly_one_run(self):
        sink, _ = run_instrumented()
        with pytest.raises(RuntimeError, match="exactly one run"):
            shared_simulator(telemetry=sink).run()


# ----------------------------------------------------------------------
# Live MetricsStore == post-hoc reconstruction (satellite #3)
# ----------------------------------------------------------------------
class TestLiveMetricsParity:
    def setup_method(self):
        self.sink, self.result = run_instrumented()
        self.posthoc = self.result.to_metrics_store()

    def test_latency_observations_identical(self):
        key = lambda obs: (obs.microservice, obs.timestamp, obs.latency)
        assert sorted(self.sink.metrics.latencies, key=key) == sorted(
            self.posthoc.latencies, key=key
        )

    def test_call_counts_identical(self):
        key = lambda s: (s.microservice, s.timestamp)
        assert sorted(self.sink.metrics.call_counts, key=key) == sorted(
            self.posthoc.call_counts, key=key
        )

    def test_utilization_identical(self):
        assert self.sink.metrics.utilization == self.posthoc.utilization

    def test_profiling_windows_identical(self):
        for name in ("F", "G", "P", "Q"):
            assert self.sink.metrics.profiling_windows(name) == (
                self.posthoc.profiling_windows(name)
            )


# ----------------------------------------------------------------------
# Span emission: graph + Eq. 1 reconstruction
# ----------------------------------------------------------------------
class TestSpanEmission:
    def setup_method(self):
        self.coordinator = TracingCoordinator()
        self.sink, self.result = run_instrumented(coordinator=self.coordinator)

    def test_every_completed_request_yields_a_trace(self):
        total = sum(self.result.completed.values())
        assert self.sink.sampled_traces == total
        assert self.coordinator.trace_count() == total

    def test_graph_reconstruction_matches_specs(self):
        g1 = self.coordinator.extract_graph("s1")
        assert g1.root.microservice == "F"
        assert [
            sorted(node.microservice for node in stage)
            for stage in g1.root.stages
        ] == [["P", "Q"]]
        g2 = self.coordinator.extract_graph("s2")
        assert g2.root.microservice == "G"
        assert [[n.microservice for n in s] for s in g2.root.stages] == [["P"]]

    def test_eq1_recovers_engine_own_latency(self):
        # Pool Eq.-1 extractions across both services (P is shared).
        pooled = {}
        for service in ("s1", "s2"):
            for name, values in self.coordinator.latency_samples(service).items():
                pooled.setdefault(name, []).extend(values)
        for name in ("F", "G", "P", "Q"):
            engine = np.frombuffer(self.result._own[name][1], dtype=np.float64)
            assert len(pooled[name]) == len(engine)
            assert np.allclose(
                np.sort(pooled[name]), np.sort(engine), atol=1e-9
            )

    def test_e2e_span_duration_equals_engine_latency(self):
        for service in ("s1", "s2"):
            from_traces = np.sort(
                self.coordinator.end_to_end_latencies(service)
            )
            engine = np.sort(self.result.latencies(service, include_warmup=True))
            assert np.allclose(from_traces, engine, atol=1e-9)

    def test_spans_form_client_server_pairs(self):
        trace = self.sink.traces[0]
        servers = [s for s in trace.spans if s.kind is SpanKind.SERVER]
        clients = [s for s in trace.spans if s.kind is SpanKind.CLIENT]
        assert len(servers) == len(clients) + 1  # root has no client span

    def test_max_traces_caps_retention_not_sampling(self):
        sink, result = run_instrumented(
            config=TelemetryConfig(window_min=0.25, max_traces=10)
        )
        assert len(sink.traces) == 10
        assert sink.sampled_traces == sum(result.completed.values())

    def test_spans_off_still_monitors(self):
        sink, result = run_instrumented(
            config=TelemetryConfig(window_min=0.25, spans=False)
        )
        assert sink.traces == []
        assert sink.sampled_traces == 0
        counted = sum(w.count for w in sink.monitor.windows if w.service == "s1")
        assert counted == result.completed["s1"]


# ----------------------------------------------------------------------
# Windowed SLA agreement (satellite #2)
# ----------------------------------------------------------------------
class TestWindowedViolationAgreement:
    def test_monitor_matches_posthoc_api_window_for_window(self):
        window_min = 0.25
        sink, result = run_instrumented(
            config=TelemetryConfig(window_min=window_min)
        )
        for service, sla in (("s1", 300.0), ("s2", 300.0)):
            posthoc = result.violation_rate_by_window(
                service, sla, window_min=window_min
            )
            live = {
                w.window: w.violation_rate
                for w in sink.monitor.windows_of(service)
            }
            assert live.keys() == posthoc.keys()
            for window, rate in posthoc.items():
                assert live[window] == pytest.approx(rate, abs=1e-12)

    def test_count_weighted_windows_equal_aggregate(self):
        # Warmup on a window boundary: post-warmup windows tile the
        # steady state exactly, so their count-weighted average is the
        # aggregate violation rate.
        result = shared_simulator().run()
        windows = result.violation_rate_by_window(
            "s1", 300.0, window_min=0.1, include_warmup=False
        )
        minutes, values = result._e2e["s1"]
        minutes = np.frombuffer(minutes, dtype=np.float64)
        values = np.frombuffer(values, dtype=np.float64)
        steady = values[minutes >= 0.1]
        weights = {
            w: np.sum((minutes >= 0.1) & ((minutes / 0.1).astype(int) == w))
            for w in windows
        }
        weighted = sum(windows[w] * weights[w] for w in windows) / len(steady)
        assert weighted == pytest.approx(
            result.sla_violation_rate("s1", 300.0), abs=1e-12
        )

    def test_rejects_bad_window(self):
        result = shared_simulator().run()
        with pytest.raises(ValueError, match="window_min"):
            result.violation_rate_by_window("s1", 300.0, window_min=0.0)


# ----------------------------------------------------------------------
# Window machinery: registry snapshots + health series
# ----------------------------------------------------------------------
class TestWindowSeries:
    def test_series_has_one_row_per_full_window(self):
        sink, _ = run_instrumented(
            config=TelemetryConfig(window_min=0.1)
        )
        # 0.5 min duration / 0.1 min windows = 5 in-run ticks.
        assert len(sink.window_series) == 5
        for row in sink.window_series:
            assert set(row) == {
                "end_min",
                "queue_depth",
                "busy_fraction",
                "containers",
                "events_per_sec",
            }
            assert row["containers"] == 8
            assert 0.0 <= row["busy_fraction"] <= 1.0
            assert row["events_per_sec"] > 0

    def test_registry_tracks_run_totals(self):
        sink, result = run_instrumented()
        completed = sum(result.completed.values())
        assert sink.registry.counter("requests_completed").value == completed
        assert (
            sink.registry.gauge("events_processed").value
            == result.events_processed
        )
        histogram = sink.registry.histogram("e2e_latency_ms.s1")
        assert histogram.count == result.completed["s1"]


# ----------------------------------------------------------------------
# Decision audit trail
# ----------------------------------------------------------------------
class TestDecisionAudit:
    def test_scale_container_count_records(self):
        sink = TelemetrySink()
        simulator = shared_simulator(telemetry=sink)
        simulator.scale_container_count(
            "P", 4, reason="test scale", workload=123.0, latency_target_ms=50.0
        )
        simulator.scale_container_count("P", 4)  # no delta -> no record
        assert len(sink.decisions) == 1
        record = sink.decisions.records[0]
        assert record.actor == "simulator"
        assert (record.before, record.after) == (2, 4)
        assert record.workload == 123.0
        assert record.latency_target_ms == 50.0

    def test_autoscaler_records_reconciles(self):
        from repro.core import ErmsScaler
        from repro.simulator.autoscaled import (
            AutoscaleConfig,
            AutoscaledSimulation,
        )
        from repro.workloads import social_network

        app = social_network()
        specs = app.with_workloads(
            {s.name: 6_000.0 for s in app.services}, sla=250.0
        )
        sink = TelemetrySink(config=TelemetryConfig(window_min=0.5, spans=False))
        simulation = AutoscaledSimulation(
            specs,
            app.simulated,
            ErmsScaler(),
            app.analytic_profiles(),
            # Step the rate up mid-run so the reconcile must move counts.
            rates={
                spec.name: (lambda t: 3_000.0 if t < 0.5 else 12_000.0)
                for spec in specs
            },
            config=SimulationConfig(
                duration_min=1.5, warmup_min=0.25, seed=7
            ),
            autoscale=AutoscaleConfig(interval_min=0.5),
            telemetry=sink,
        )
        simulation.run()
        ups = sink.decisions.scale_ups()
        assert ups, "rate step must force at least one scale-up"
        assert all(r.actor == "simulator" for r in sink.decisions.records)
        assert all("reconcile" in r.reason for r in ups)
        assert all(r.workload is not None for r in ups)

    def test_controller_audit_log(self):
        audit = DecisionLog()
        controller = DeploymentController(
            api=MockKubeApi(),
            cluster=Cluster.homogeneous(4),
            provisioner=InterferenceAwareProvisioner(),
            audit=audit,
        )
        controller.apply_allocation({"ms": 3})
        controller.reconcile()
        controller.apply_allocation({"ms": 1})
        controller.reconcile()
        assert [r.delta for r in audit.records] == [3, -2]
        assert all(r.actor == "controller" for r in audit.records)


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------
class TestExporters:
    def test_chrome_trace_events_structure(self):
        sink, _ = run_instrumented(
            config=TelemetryConfig(window_min=0.25, max_traces=3)
        )
        events = chrome_trace_events(sink.traces)
        spans = [e for e in events if e["ph"] == "X"]
        metadata = [e for e in events if e["ph"] == "M"]
        assert spans and metadata
        total_spans = sum(len(t.spans) for t in sink.traces)
        assert len(spans) == total_spans
        process_names = {
            e["args"]["name"] for e in metadata if e["name"] == "process_name"
        }
        assert process_names == {"service:s1", "service:s2"}
        for event in spans:
            assert event["dur"] >= 0
            assert event["cat"] in ("server", "client")

    def test_write_chrome_trace_roundtrips(self, tmp_path):
        sink, _ = run_instrumented(
            config=TelemetryConfig(window_min=0.25, max_traces=2)
        )
        path = tmp_path / "trace.json"
        count = write_chrome_trace(sink.traces, str(path))
        payload = json.loads(path.read_text())
        assert len(payload["traceEvents"]) == count

    def test_run_report_contents(self, tmp_path):
        sink, result = run_instrumented()
        report = build_run_report(sink, result)
        assert report["schema"] == 1
        assert set(report["services"]) == {"s1", "s2"}
        for entry in report["services"].values():
            assert entry["sla_ms"] == 300.0
            assert "violation_rate" in entry
        assert report["events_processed"] == result.events_processed
        assert report["traces_collected"] == len(sink.traces)
        assert report["profiling_samples"]["latencies"] == len(
            sink.metrics.latencies
        )
        path = tmp_path / "report.json"
        write_run_report(report, str(path))
        assert json.loads(path.read_text()) == json.loads(
            json.dumps(report)
        )


# ----------------------------------------------------------------------
# Config validation
# ----------------------------------------------------------------------
class TestConfigValidation:
    def test_rejects_bad_window(self):
        with pytest.raises(ValueError, match="window_min"):
            TelemetryConfig(window_min=0.0)

    def test_rejects_bad_sampling(self):
        with pytest.raises(ValueError, match="sampling_rate"):
            TelemetryConfig(sampling_rate=0.0)
        with pytest.raises(ValueError, match="sampling_rate"):
            TelemetryConfig(sampling_rate=1.5)
