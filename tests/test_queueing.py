"""Tests for repro.queueing: M/M/c closed forms, priority queues, sharing.

Includes cross-validation against the discrete-event simulator — the
analytic formulas and the DES must agree on mean response times, which
pins down both implementations.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.model import ServiceSpec
from repro.graphs import DependencyGraph, call
from repro.queueing import (
    MM1Priority,
    MMc,
    erlang_c,
    mm1_mean_response,
    mm1_mean_wait,
    sharing_vs_partitioning,
)
from repro.simulator import (
    ClusterSimulator,
    SimulatedMicroservice,
    SimulationConfig,
)


class TestMM1:
    def test_known_values(self):
        # λ=0.5, μ=1: W_q = 0.5/(0.5) = 1, response = 2.
        assert mm1_mean_wait(0.5, 1.0) == pytest.approx(1.0)
        assert mm1_mean_response(0.5, 1.0) == pytest.approx(2.0)

    def test_empty_queue(self):
        assert mm1_mean_wait(0.0, 1.0) == pytest.approx(0.0)
        assert mm1_mean_response(0.0, 1.0) == pytest.approx(1.0)

    def test_unstable_rejected(self):
        with pytest.raises(ValueError, match="unstable"):
            mm1_mean_wait(1.0, 1.0)

    def test_invalid_rates(self):
        with pytest.raises(ValueError):
            mm1_mean_wait(-0.1, 1.0)
        with pytest.raises(ValueError):
            mm1_mean_wait(0.5, 0.0)

    @given(
        st.floats(min_value=0.01, max_value=0.95),
        st.floats(min_value=0.1, max_value=10.0),
    )
    @settings(max_examples=100)
    def test_wait_grows_with_utilization(self, rho, mu):
        lam = rho * mu
        wait = mm1_mean_wait(lam, mu)
        heavier = mm1_mean_wait(min(lam * 1.04, mu * 0.99), mu)
        assert heavier >= wait


class TestErlangC:
    def test_single_server_equals_rho(self):
        # For c=1, Erlang-C equals the utilization.
        assert erlang_c(1, 0.6) == pytest.approx(0.6)

    def test_no_load(self):
        assert erlang_c(4, 0.0) == 0.0

    def test_bounds(self):
        value = erlang_c(4, 3.0)
        assert 0.0 < value < 1.0

    def test_more_servers_less_waiting(self):
        assert erlang_c(8, 3.0) < erlang_c(4, 3.0)

    def test_unstable_rejected(self):
        with pytest.raises(ValueError, match="unstable"):
            erlang_c(2, 2.0)


class TestMMc:
    def test_reduces_to_mm1(self):
        queue = MMc(arrival_rate=0.5, service_rate=1.0, servers=1)
        assert queue.mean_response() == pytest.approx(mm1_mean_response(0.5, 1.0))

    def test_from_per_minute(self):
        queue = MMc.from_per_minute(30_000.0, mean_service_ms=5.0, servers=4)
        assert queue.arrival_rate == pytest.approx(0.5)
        assert queue.service_rate == pytest.approx(0.2)
        assert queue.utilization == pytest.approx(0.625)

    def test_pooling_beats_partitioning(self):
        pooled = MMc(arrival_rate=1.0, service_rate=0.4, servers=4)
        split = MMc(arrival_rate=0.5, service_rate=0.4, servers=2)
        assert pooled.mean_response() < split.mean_response()

    def test_wait_tail_decreasing(self):
        queue = MMc(arrival_rate=0.7, service_rate=0.2, servers=5)
        assert queue.wait_tail(0.0) == pytest.approx(queue.wait_probability())
        assert queue.wait_tail(10.0) < queue.wait_tail(1.0)

    def test_percentile_above_mean(self):
        queue = MMc(arrival_rate=0.6, service_rate=0.2, servers=4)
        assert queue.response_percentile(95.0) > queue.mean_response()

    def test_percentile_monotone(self):
        queue = MMc(arrival_rate=0.6, service_rate=0.2, servers=4)
        assert queue.response_percentile(99.0) > queue.response_percentile(50.0)

    def test_invalid_percentile(self):
        queue = MMc(arrival_rate=0.1, service_rate=1.0, servers=1)
        with pytest.raises(ValueError, match="percentile"):
            queue.response_percentile(0.0)

    def test_unstable_rejected(self):
        with pytest.raises(ValueError, match="unstable"):
            MMc(arrival_rate=1.0, service_rate=0.2, servers=4)

    def test_matches_simulator_mean_response(self):
        """The DES and the closed form agree (cross-validation)."""
        base_ms, threads, rate_per_min = 5.0, 4, 36_000.0
        queue = MMc.from_per_minute(rate_per_min, base_ms, threads)

        spec = ServiceSpec("svc", DependencyGraph("svc", call("P")), 0.0, 1e9)
        sim = ClusterSimulator(
            [spec],
            {"P": SimulatedMicroservice("P", base_service_ms=base_ms, threads=threads)},
            containers={"P": 1},
            rates={"svc": rate_per_min},
            config=SimulationConfig(duration_min=3.0, warmup_min=0.5, seed=4),
        ).run()
        simulated_mean = float(np.mean(sim.latencies("svc")))
        assert simulated_mean == pytest.approx(queue.mean_response(), rel=0.12)


class TestMM1Priority:
    def test_high_class_waits_less(self):
        queue = MM1Priority(arrival_rates=[0.3, 0.3], service_rate=1.0)
        assert queue.mean_wait(0) < queue.mean_wait(1)

    def test_work_conservation(self):
        """λ-weighted wait equals the FCFS M/M/1 wait at the same load."""
        queue = MM1Priority(arrival_rates=[0.25, 0.35], service_rate=1.0)
        fcfs_wait = mm1_mean_wait(0.6, 1.0)
        assert queue.aggregate_mean_wait() == pytest.approx(fcfs_wait, rel=1e-9)

    def test_three_classes_ordered(self):
        queue = MM1Priority(arrival_rates=[0.2, 0.2, 0.2], service_rate=1.0)
        waits = [queue.mean_wait(k) for k in range(3)]
        assert waits == sorted(waits)

    def test_unstable_rejected(self):
        with pytest.raises(ValueError, match="unstable"):
            MM1Priority(arrival_rates=[0.6, 0.6], service_rate=1.0)

    def test_empty_classes_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            MM1Priority(arrival_rates=[], service_rate=1.0)

    def test_bad_index(self):
        queue = MM1Priority(arrival_rates=[0.5], service_rate=1.0)
        with pytest.raises(IndexError):
            queue.mean_wait(1)

    def test_matches_strict_priority_simulation(self):
        """The DES with δ=0 on a 1-thread container matches Cobham."""
        base_ms = 5.0
        rate_hot, rate_cold = 4_000.0, 4_000.0  # per minute
        queue = MM1Priority(
            arrival_rates=[rate_hot / 60_000.0, rate_cold / 60_000.0],
            service_rate=1.0 / base_ms,
        )
        specs = [
            ServiceSpec("hot", DependencyGraph("hot", call("P")), 0.0, 1e9),
            ServiceSpec("cold", DependencyGraph("cold", call("P")), 0.0, 1e9),
        ]
        sim = ClusterSimulator(
            specs,
            {"P": SimulatedMicroservice("P", base_service_ms=base_ms, threads=1)},
            containers={"P": 1},
            rates={"hot": rate_hot, "cold": rate_cold},
            config=SimulationConfig(
                duration_min=4.0, warmup_min=0.5, seed=8,
                scheduling="priority", delta=0.0,
            ),
            priorities={"P": {"hot": 0, "cold": 1}},
        ).run()
        hot_mean = float(np.mean(sim.latencies("hot")))
        cold_mean = float(np.mean(sim.latencies("cold")))
        assert hot_mean == pytest.approx(queue.mean_response(0), rel=0.15)
        assert cold_mean == pytest.approx(queue.mean_response(1), rel=0.15)


class TestSharingComparison:
    def test_paper_observation_sharing_beats_partitioning(self):
        """§2.3: at fixed resources, FCFS sharing has better mean time."""
        comparison = sharing_vs_partitioning(
            arrivals_per_minute_1=10_000.0,
            arrivals_per_minute_2=10_000.0,
            mean_service_ms=5.0,
            servers=4,
        )
        assert comparison.shared_fcfs < comparison.partitioned_mean

    def test_priority_brackets_fcfs(self):
        comparison = sharing_vs_partitioning(
            arrivals_per_minute_1=8_000.0,
            arrivals_per_minute_2=12_000.0,
            mean_service_ms=5.0,
            servers=4,
        )
        assert comparison.shared_priority_class1 < comparison.shared_priority_class2

    def test_validation(self):
        with pytest.raises(ValueError, match="even"):
            sharing_vs_partitioning(1.0, 1.0, 5.0, servers=3)
        with pytest.raises(ValueError, match="mean_service_ms"):
            sharing_vs_partitioning(1.0, 1.0, 0.0, servers=2)
