"""Scaling dynamic dependency graphs per class (paper §7 / §9).

A service's call graph varies with request content: most requests take a
short path, some trigger an expensive branch.  Erms' shipped behaviour
merges everything into one complete graph and over-provisions; the
paper's proposed remedy — cluster variants into classes and scale each
class — is implemented in ``repro.graphs.clustering``.  This example
round-trips the variants through the Alibaba-v2021 trace-row format on
the way, as a real pipeline would.

Run:  python examples/dynamic_graph_classes.py
"""

import tempfile

from repro.core import ServiceSpec, compute_service_targets
from repro.experiments import format_table
from repro.graphs import DependencyGraph, call
from repro.graphs.clustering import (
    class_workloads,
    cluster_graphs,
    merge_variants,
)
from repro.workloads import analytic_profile
from repro.workloads.traces_io import graph_to_rows, graphs_from_csv, write_csv

WORKLOAD = 60_000.0  # requests/minute
SLA = 250.0
SHORT_TRAFFIC = 0.9  # 90% of requests take the short path


def main():
    short = DependencyGraph("checkout", call("fe", stages=[[call("cart")]]))
    long = DependencyGraph(
        "checkout",
        call(
            "fe",
            stages=[
                [
                    call(
                        "cart",
                        stages=[[call("fraud-check", stages=[[call("fraud-db")]])]],
                    )
                ]
            ],
        ),
    )
    profiles = {
        "fe": analytic_profile("fe", base_service_ms=3.0, threads=4),
        "cart": analytic_profile("cart", base_service_ms=8.0, threads=2),
        "fraud-check": analytic_profile("fraud-check", base_service_ms=40.0, threads=1),
        "fraud-db": analytic_profile("fraud-db", base_service_ms=20.0, threads=2),
    }

    # Persist the observed variants as Alibaba-style MSCallGraph rows and
    # read them back — the on-disk interchange a tracing pipeline uses.
    rows = graph_to_rows(short, traceid="t-short") + graph_to_rows(
        long, traceid="t-long"
    )
    with tempfile.NamedTemporaryFile(suffix=".csv", delete=False) as handle:
        path = handle.name
    write_csv(rows, path)
    variants = list(graphs_from_csv(path).values())
    print(f"Loaded {len(variants)} graph variants from {path}")

    def containers_for(graph, workload):
        spec = ServiceSpec("checkout", graph, workload=workload, sla=SLA)
        return sum(compute_service_targets(spec, profiles).containers.values())

    # Strategy A (paper §7): one complete graph for all requests.
    complete = merge_variants("checkout", variants)
    complete_total = containers_for(complete, WORKLOAD)

    # Strategy B (paper §9): cluster into classes, scale each class.
    classes = cluster_graphs(
        variants,
        frequencies=[SHORT_TRAFFIC, 1.0 - SHORT_TRAFFIC],
        similarity_threshold=0.9,
    )
    loads = class_workloads(classes, WORKLOAD)
    per_class_total = sum(
        containers_for(cls.representative, load)
        for cls, load in zip(classes, loads)
    )

    rows = [
        {"strategy": "complete graph (§7)", "containers": complete_total},
        {"strategy": f"{len(classes)} graph classes (§9)", "containers": per_class_total},
    ]
    print()
    print(format_table(rows, "Dynamic-graph scaling strategies"))
    print(
        f"\nPer-class scaling saves "
        f"{1.0 - per_class_total / complete_total:.0%} of containers when "
        f"{SHORT_TRAFFIC:.0%} of traffic takes the short path."
    )


if __name__ == "__main__":
    main()
