"""Quickstart: scale two services sharing a microservice with Erms.

Builds the paper's Fig. 5 scenario from scratch — two online services that
share a post-storage microservice — profiles each microservice with a
piecewise latency model, and lets Erms compute latency targets, priorities
and container counts.

Run:  python examples/quickstart.py
"""

from repro import ErmsScaler, ServiceSpec, call
from repro.graphs import DependencyGraph
from repro.core import predicted_end_to_end
from repro.workloads import analytic_profile


def main():
    # 1. Describe the dependency graphs: service 1 calls the (workload-
    #    sensitive) user timeline then shared post storage; service 2 calls
    #    the cheaper home timeline then the same post storage.
    svc1 = ServiceSpec(
        "read-user-timeline",
        DependencyGraph(
            "read-user-timeline",
            call("user-timeline", stages=[[call("post-storage")]]),
        ),
        workload=40_000.0,  # requests/minute
        sla=300.0,  # ms, end-to-end P95
    )
    svc2 = ServiceSpec(
        "read-home-timeline",
        DependencyGraph(
            "read-home-timeline",
            call("home-timeline", stages=[[call("post-storage")]]),
        ),
        workload=40_000.0,
        sla=300.0,
    )

    # 2. Profile each microservice: piecewise latency vs per-container
    #    load, derived here from service time and thread count (in a real
    #    deployment these come from repro.profiling fits of traced data).
    profiles = {
        "user-timeline": analytic_profile("user-timeline", base_service_ms=50.0, threads=1),
        "home-timeline": analytic_profile("home-timeline", base_service_ms=15.0, threads=2),
        "post-storage": analytic_profile("post-storage", base_service_ms=25.0, threads=2),
    }

    # 3. Scale.  Erms merges each graph, computes optimal latency targets
    #    (Eq. 5), prioritizes services at the shared microservice, and
    #    converts targets into container counts.
    scaler = ErmsScaler()
    allocation = scaler.scale([svc1, svc2], profiles)

    print("Latency targets (ms):")
    for service, targets in allocation.targets.items():
        for microservice, target in sorted(targets.items()):
            print(f"  {service:20s} {microservice:15s} {target:7.1f}")

    print("\nPriorities at shared microservices (rank 0 served first):")
    for microservice, ranks in allocation.priorities.items():
        print(f"  {microservice}: {ranks}")

    print("\nContainers:")
    for microservice, count in sorted(allocation.containers.items()):
        print(f"  {microservice:15s} {count:4d}")
    print(f"  {'TOTAL':15s} {allocation.total_containers():4d}")

    print("\nModel-predicted end-to-end P95 vs SLA:")
    for spec in (svc1, svc2):
        overrides = allocation.modified_workloads.get(spec.name) or None
        e2e = predicted_end_to_end(
            spec, profiles, allocation.containers, workload_overrides=overrides
        )
        print(f"  {spec.name:20s} {e2e:7.1f} ms  (SLA {spec.sla:.0f} ms)")


if __name__ == "__main__":
    main()
