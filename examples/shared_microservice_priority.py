"""Why priority scheduling at shared microservices saves resources (§2.3).

Recreates the paper's motivating experiment (Fig. 5): two services share
postStorage; one of them also depends on the workload-sensitive
userTimeline.  Three strategies are compared on resource usage, and the
priority policy is then demonstrated live on the simulator, including the
effect of the δ parameter.

Run:  python examples/shared_microservice_priority.py
"""

from repro.core import (
    ErmsScaler,
    ServiceSpec,
    compute_service_targets,
    scale_with_priorities,
)
from repro.experiments import format_table, run_delta_sweep
from repro.graphs import DependencyGraph, call
from repro.workloads import analytic_profile

WORKLOAD = 40_000.0
SLA = 300.0


def build_scenario():
    svc1 = ServiceSpec(
        "svc1",
        DependencyGraph("svc1", call("U", stages=[[call("P")]])),
        workload=WORKLOAD,
        sla=SLA,
    )
    svc2 = ServiceSpec(
        "svc2",
        DependencyGraph("svc2", call("H", stages=[[call("P")]])),
        workload=WORKLOAD,
        sla=SLA,
    )
    profiles = {
        "U": analytic_profile("U", base_service_ms=50.0, threads=1),
        "H": analytic_profile("H", base_service_ms=15.0, threads=2),
        "P": analytic_profile("P", base_service_ms=25.0, threads=2),
    }
    return [svc1, svc2], profiles


def main():
    specs, profiles = build_scenario()

    # Strategy 1: FCFS sharing — min latency target, combined workload.
    fcfs = ErmsScaler(use_priority=False).scale(specs, profiles)
    # Strategy 2: non-sharing — partition P's containers per service.
    non_sharing = sum(
        sum(compute_service_targets(spec, profiles).containers.values())
        for spec in specs
    )
    # Strategy 3: Erms priority scheduling.
    priority = scale_with_priorities(specs, profiles)

    rows = [
        {"strategy": "1. FCFS sharing", "containers": fcfs.total_containers()},
        {"strategy": "2. non-sharing", "containers": non_sharing},
        {
            "strategy": "3. priority (Erms)",
            "containers": sum(priority.containers().values()),
        },
    ]
    print(format_table(rows, "Fig. 5 strategies (paper: 10.5 / 9 / 7.5 cores)"))
    print("\nPriority ranks at P:", priority.priorities["P"])

    # Live demonstration of delta-probabilistic scheduling at P.
    print("\nSimulating the shared microservice under priority scheduling:")
    rows = run_delta_sweep(deltas=(0.0, 0.05, 0.2), seed=1)
    print(format_table(rows, "Delta sweep (paper Fig. 9: delta=0.05 is the sweet spot)"))


if __name__ == "__main__":
    main()
