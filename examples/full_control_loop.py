"""The complete Erms control loop on a mock Kubernetes cluster.

Drives :class:`repro.core.controller.ErmsController` — the paper's full
Fig. 6 pipeline — through a workload surge and decay on the Hotel
Reservation application: scaling decisions become Deployments, pods get
scheduled interference-aware onto hosts, boot with a cold-start delay,
and shared microservices receive tc-style priority bands.

Run:  python examples/full_control_loop.py
"""

from repro.core import Cluster
from repro.core.controller import ErmsController
from repro.experiments import format_table
from repro.workloads import hotel_reservation


def main():
    app = hotel_reservation()
    cluster = Cluster.homogeneous(6)
    # One host is busy with colocated batch jobs.
    cluster.hosts[0].background_cpu = 24.0
    cluster.hosts[0].background_memory_mb = 48_000.0

    controller = ErmsController(
        specs=app.services,
        cluster=cluster,
        # Profiles are re-conditioned on measured utilization each period.
        profile_source=lambda cpu, mem: app.analytic_profiles(1.0 + cpu + mem),
        startup_seconds=3.0,
    )

    surge = [3_000.0, 8_000.0, 25_000.0, 40_000.0, 25_000.0, 8_000.0]
    rows = []
    for period, rate in enumerate(surge):
        report = controller.reconcile(
            {spec.name: rate for spec in app.services}
        )
        started = controller.tick(5.0)  # 5s control period; pods boot in 3s
        rows.append(
            {
                "period": period,
                "rate_per_service": rate,
                "desired_containers": report.total_containers(),
                "pods_started": started,
                "serving": sum(controller.serving_containers().values()),
                "tc_classes": report.traffic_classes_installed,
                "imbalance": report.cluster_imbalance,
            }
        )
    print(format_table(rows, "Erms control loop over a workload surge"))

    print("\nWhere the pods landed (note host-000 carries batch load):")
    for host in cluster.hosts:
        count = host.container_count()
        print(f"  {host.host_id}: {count:3d} pods "
              f"(background cpu {host.background_cpu:.0f} cores)")

    shared = app.shared_stateless()
    print(f"\nPriority bands at shared microservices {shared}:")
    for name in shared:
        bands = controller.configurator.bands_for(controller.api, name)
        if bands:
            print(f"  {name}: {bands}")


if __name__ == "__main__":
    main()
