"""Trace-driven scaling at Alibaba (Taobao) scale — paper §6.5 in miniature.

Generates a synthetic Taobao-like population (dozens of services, ~50
microservices each, a hot pool of shared microservices), scales the whole
population with four schemes, and reports the per-service container
distribution and the reduction factors of paper Fig. 16.

Run:  python examples/alibaba_trace_simulation.py
"""

import numpy as np

from repro.baselines import GrandSLAm, Rhythm
from repro.core import ErmsScaler
from repro.experiments import format_table, run_trace_simulation
from repro.workloads import generate_taobao, sharing_counts

N_SERVICES = 60


def main():
    # The sharing landscape the generator reproduces (paper Fig. 2).
    counts = sharing_counts(n_microservices=20_000, n_services=1_000, seed=0)
    print(
        "Synthetic sharing CDF: "
        f"{np.mean(counts > 100):.0%} of microservices shared by >100 of "
        "1000 services (paper: ~40%)"
    )

    workload = generate_taobao(n_services=N_SERVICES, seed=42)
    print(
        f"\nGenerated {N_SERVICES} services, "
        f"{workload.microservice_count()} microservices, "
        f"{len(workload.shared_microservices())} shared"
    )

    result = run_trace_simulation(
        workload,
        [ErmsScaler(), ErmsScaler(use_priority=False), GrandSLAm(), Rhythm()],
    )

    rows = [
        {
            "scheme": scheme,
            "total_containers": result.totals[scheme],
            "avg_per_service": result.average_per_service(scheme),
        }
        for scheme in result.totals
    ]
    print()
    print(format_table(rows, "Allocation at Taobao scale"))

    print()
    print(
        "Erms vs GrandSLAm reduction: "
        f"{result.reduction_factor('erms', 'grandslam'):.2f}x (paper: 1.6x)"
    )
    print(
        "Latency Target Computation alone: "
        f"{result.reduction_factor('erms-fcfs', 'grandslam'):.2f}x (paper: ~1.2x)"
    )
    print(
        "Priority scheduling on top: "
        f"{result.reduction_factor('erms', 'erms-fcfs'):.2f}x (paper: ~1.5x)"
    )


if __name__ == "__main__":
    main()
