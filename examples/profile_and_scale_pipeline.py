"""The full Erms pipeline: trace -> profile -> scale -> validate.

Reproduces the system loop of paper Fig. 6 end to end on the simulator
substrate:

1. *Tracing Coordinator* — run a service, synthesize Jaeger-style spans,
   extract the dependency graph and per-microservice latencies (Eq. 1).
2. *Offline Profiling* — sweep each microservice across per-container
   loads on the simulator and fit the piecewise latency model (§5.2).
3. *Online Scaling* — compute latency targets and containers from the
   *measured* profiles (§5.3).
4. *Validation* — replay the allocation and compare the simulated P95
   against the SLA.

Run:  python examples/profile_and_scale_pipeline.py
"""

from repro.core import ErmsScaler, ServiceSpec
from repro.experiments import (
    evaluate_allocation,
    fit_profiles_from_simulation,
    format_table,
)
from repro.graphs import DependencyGraph, call
from repro.simulator import SimulatedMicroservice
from repro.tracing import TracingCoordinator, synthesize_trace

SLA = 150.0
WORKLOAD = 9_000.0


def main():
    # Ground truth the controller does NOT see directly: service times and
    # thread counts of the three microservices.
    simulated = {
        "frontend": SimulatedMicroservice("frontend", base_service_ms=3.0, threads=4),
        "search": SimulatedMicroservice("search", base_service_ms=12.0, threads=1),
        "geo": SimulatedMicroservice("geo", base_service_ms=6.0, threads=2),
    }
    graph = DependencyGraph(
        "hotel-search",
        call("frontend", stages=[[call("search", stages=[[call("geo")]])]]),
    )

    # --- 1. Tracing: reconstruct the graph from spans -------------------
    coordinator = TracingCoordinator()
    coordinator.offer(
        synthesize_trace(graph, {"frontend": 3.0, "search": 12.0, "geo": 6.0})
    )
    extracted = coordinator.extract_graph("hotel-search")
    print("Graph extracted from spans:", extracted.critical_paths())

    # --- 2. Offline profiling against the simulator ---------------------
    print("Profiling microservices (simulated load sweeps)...")
    profiles = fit_profiles_from_simulation(
        simulated, sweep_points=8, duration_min=0.8, seed=7
    )
    rows = [
        {
            "microservice": name,
            "cutoff_req_min": profile.model.cutoff,
            "low_slope": profile.model.low.slope,
            "high_slope": profile.model.high.slope,
        }
        for name, profile in profiles.items()
    ]
    print(format_table(rows, "Fitted piecewise profiles", "{:.4f}"))

    # --- 3. Online scaling on the measured profiles ---------------------
    spec = ServiceSpec("hotel-search", extracted, workload=WORKLOAD, sla=SLA)
    allocation = ErmsScaler().scale([spec], profiles)
    print("\nContainers:", dict(sorted(allocation.containers.items())))

    # --- 4. Validate on the simulator ------------------------------------
    result = evaluate_allocation(
        [spec], simulated, allocation, duration_min=1.5, warmup_min=0.5, seed=3
    )
    p95 = result.tail_latency("hotel-search")
    violation = result.sla_violation_rate("hotel-search", SLA)
    print(
        f"\nSimulated P95 = {p95:.1f} ms (SLA {SLA:.0f} ms), "
        f"violation rate = {violation:.3f}"
    )


if __name__ == "__main__":
    main()
