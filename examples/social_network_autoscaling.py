"""Autoscaling the Social Network application and validating on the simulator.

Scales the DeathStarBench-like Social Network application (36
microservices, 3 services, shared post-storage / user-timeline /
social-graph) with Erms and the three baselines, then replays Erms'
allocation on the discrete-event cluster simulator to check the SLA holds
for real — the closed loop of paper Fig. 6.

Run:  python examples/social_network_autoscaling.py
"""

from repro.baselines import Firm, GrandSLAm, Rhythm
from repro.core import ErmsScaler
from repro.experiments import evaluate_allocation, format_table
from repro.workloads import social_network

WORKLOAD = 20_000.0  # requests/minute per service
SLA = 200.0  # ms


def main():
    app = social_network()
    profiles = app.analytic_profiles()
    specs = app.with_workloads(
        {spec.name: WORKLOAD for spec in app.services}, sla=SLA
    )

    print(
        f"Application: {app.name} — {len(app.microservices())} microservices, "
        f"{len(app.services)} services, shared: {sorted(app.shared_stateless())}"
    )

    rows = []
    erms_allocation = None
    for scheme in (ErmsScaler(), GrandSLAm(), Rhythm(), Firm()):
        allocation = scheme.scale(specs, profiles)
        if scheme.name == "erms":
            erms_allocation = allocation
        rows.append(
            {
                "scheme": scheme.name,
                "containers": allocation.total_containers(),
            }
        )
    print()
    print(format_table(rows, f"Containers at {WORKLOAD:.0f} req/min, SLA {SLA:.0f}ms"))

    print("\nReplaying the Erms allocation on the cluster simulator...")
    result = evaluate_allocation(
        specs,
        app.simulated,
        erms_allocation,
        duration_min=1.5,
        warmup_min=0.5,
        seed=1,
    )
    sim_rows = []
    for spec in specs:
        sim_rows.append(
            {
                "service": spec.name,
                "completed": result.completed[spec.name],
                "p95_ms": result.tail_latency(spec.name),
                "violation_rate": result.sla_violation_rate(spec.name, SLA),
            }
        )
    print(format_table(sim_rows, "Simulated end-to-end performance", "{:.3f}"))


if __name__ == "__main__":
    main()
